//! The deterministic metrics registry: counters, gauges, and
//! fixed-boundary histograms with a byte-stable snapshot format.
//!
//! Everything here is ordinary data — no wall-clock, no atomics, no
//! global state. A run (or a bench harness) builds a registry, records
//! into it, and serializes a snapshot; because every map is a `BTreeMap`
//! and every histogram's boundaries are fixed at registration, the same
//! inputs always produce the same bytes, which is what lets CI byte-diff
//! two snapshots and gate on a committed baseline.
//!
//! The thread-local cache counters in [`eclair_trace::perf`] fold in
//! through [`MetricsRegistry::absorb_perf`], so one snapshot carries the
//! whole observability surface: virtual-time latency, token totals, span
//! counts, and cache effectiveness.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Current snapshot schema tag. Bump when the JSON shape changes so
/// `baseline check` can refuse cross-schema comparisons outright.
pub const SNAPSHOT_SCHEMA: &str = "eclair-obs/v1";

/// A fixed-boundary histogram. `bounds[i]` is the *inclusive* upper edge
/// of bucket `i`; one implicit overflow bucket catches everything above
/// the last bound. Percentiles are nearest-rank over bucket upper edges
/// (the overflow bucket reports the observed maximum), which keeps them
/// deterministic and merge-stable without storing raw samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow
    /// bucket last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Nearest-rank percentile (`p` in 1..=100) over bucket upper edges;
    /// 0 when empty. An answer in the overflow bucket reports `max`.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram in. The bounds must match exactly — merged
    /// fleet-wide rollups only make sense over identical bucketings.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Default bucket boundaries for virtual-time latencies in microseconds:
/// 1 ms … 100 s in a coarse geometric ladder.
pub const VT_LATENCY_BOUNDS_US: [u64; 14] = [
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    100_000_000,
];

/// The registry: named counters, gauges, and histograms for one run (or
/// one aggregated artifact). All maps are ordered, so serialization is
/// byte-stable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values.
    pub gauges: BTreeMap<String, i64>,
    /// Distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name` (registering it at 0 first).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record into histogram `name`, registering it over `bounds` on
    /// first use. Later calls ignore `bounds` (the first registration
    /// fixes the bucketing for the registry's lifetime).
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Fold another registry in: counters add, gauges take the other's
    /// value (last write wins), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Absorb a [`eclair_trace::perf`] snapshot as `cache.*` counters —
    /// the one place the caching layer's effectiveness meets the rest of
    /// the telemetry (it must never enter the trace itself; see the
    /// transparency invariant in `eclair_trace::perf`).
    pub fn absorb_perf(&mut self, c: &eclair_trace::perf::PerfCounters) {
        self.inc("cache.frame_hits", c.frame_cache_hits);
        self.inc("cache.frame_misses", c.frame_cache_misses);
        self.inc("cache.frame_invalidations", c.frame_cache_invalidations);
        self.inc("cache.relayouts_avoided", c.relayouts_avoided);
        self.inc("cache.relayouts_full", c.relayouts_full);
        self.inc("cache.relayouts_partial", c.relayouts_partial);
        self.inc("cache.dirty_nodes_visited", c.dirty_nodes_visited);
        self.inc("cache.layout_cache_hits", c.layout_cache_hits);
        self.inc("gui.intern_hits", c.intern_hits);
        self.inc("gui.intern_misses", c.intern_misses);
        self.inc("gui.arena_slots_reused", c.arena_slots_reused);
        // Table size is a high-water gauge, not a counter: merged
        // snapshots take the max, and absorb keeps that semantic.
        let size = c.intern_table_size as i64;
        let cur = self
            .gauges
            .get("gui.intern_table_size")
            .copied()
            .unwrap_or(0);
        self.set_gauge("gui.intern_table_size", cur.max(size));
        self.inc("cache.perceive_memo_hits", c.perceive_memo_hits);
        self.inc("cache.perceive_memo_misses", c.perceive_memo_misses);
        self.inc("cache.cached_tokens", c.cached_tokens);
        self.inc("shared.hits", c.shared_hits);
        self.inc("shared.misses", c.shared_misses);
        self.inc("shared.evictions", c.shared_evictions);
        self.inc("shared.single_flight_waits", c.single_flight_waits);
        self.inc("shared.cached_tokens", c.shared_cached_tokens);
        self.inc("render.log_events", c.log_events_rendered);
        self.inc("render.log_allocations", c.log_allocations);
        self.inc("render.jsonl_events", c.jsonl_events_rendered);
        self.inc("render.jsonl_allocations", c.jsonl_allocations);
    }

    /// The byte-stable snapshot: schema tag first, then the registry,
    /// then derived percentiles per histogram (so a snapshot is readable
    /// without recomputing anything).
    pub fn snapshot_json(&self) -> String {
        let snap = Snapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                            p50: h.percentile(50),
                            p95: h.percentile(95),
                            p99: h.percentile(99),
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                        },
                    )
                })
                .collect(),
        };
        serde_json::to_string(&snap).expect("metrics snapshot serializes")
    }
}

/// The serialized snapshot shape (what `--metrics-out` writes and
/// `baseline check` reads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Always [`SNAPSHOT_SCHEMA`].
    pub schema: String,
    /// Counters, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, name-sorted.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms with precomputed percentiles, name-sorted.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Nearest-rank median.
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (overflow last).
    pub counts: Vec<u64>,
}

/// Parse a snapshot produced by [`MetricsRegistry::snapshot_json`],
/// refusing other schemas.
pub fn parse_snapshot(json: &str) -> Result<Snapshot, String> {
    let snap: Snapshot =
        serde_json::from_str(json).map_err(|e| format!("unparseable snapshot: {e}"))?;
    if snap.schema != SNAPSHOT_SCHEMA {
        return Err(format!(
            "snapshot schema {:?} (this binary reads {SNAPSHOT_SCHEMA:?})",
            snap.schema
        ));
    }
    Ok(snap)
}

/// Compare a current snapshot against a committed baseline. Scalar
/// metrics (counters, gauges, histogram counts/sums/percentiles) must
/// agree within `tol_pct` percent relative tolerance; missing or extra
/// metric names are always violations. Returns every violation found,
/// empty = pass.
pub fn baseline_check(current: &Snapshot, baseline: &Snapshot, tol_pct: f64) -> Vec<String> {
    let mut violations = Vec::new();
    fn check_scalar(violations: &mut Vec<String>, tol_pct: f64, name: &str, cur: f64, base: f64) {
        let scale = cur.abs().max(base.abs());
        if scale != 0.0 && (cur - base).abs() > scale * tol_pct / 100.0 {
            violations.push(format!("{name}: current {cur} vs baseline {base}"));
        }
    }
    compare_keys(
        "counter",
        &current.counters,
        &baseline.counters,
        &mut violations,
    );
    for (k, cur) in &current.counters {
        if let Some(base) = baseline.counters.get(k) {
            check_scalar(
                &mut violations,
                tol_pct,
                &format!("counter {k}"),
                *cur as f64,
                *base as f64,
            );
        }
    }
    compare_keys("gauge", &current.gauges, &baseline.gauges, &mut violations);
    for (k, cur) in &current.gauges {
        if let Some(base) = baseline.gauges.get(k) {
            check_scalar(
                &mut violations,
                tol_pct,
                &format!("gauge {k}"),
                *cur as f64,
                *base as f64,
            );
        }
    }
    compare_keys(
        "histogram",
        &current.histograms,
        &baseline.histograms,
        &mut violations,
    );
    for (k, cur) in &current.histograms {
        let Some(base) = baseline.histograms.get(k) else {
            continue;
        };
        if cur.bounds != base.bounds {
            violations.push(format!("histogram {k}: bucket bounds changed"));
            continue;
        }
        for (field, c, b) in [
            ("count", cur.count, base.count),
            ("sum", cur.sum, base.sum),
            ("p50", cur.p50, base.p50),
            ("p95", cur.p95, base.p95),
            ("p99", cur.p99, base.p99),
            ("max", cur.max, base.max),
        ] {
            check_scalar(
                &mut violations,
                tol_pct,
                &format!("histogram {k}.{field}"),
                c as f64,
                b as f64,
            );
        }
    }
    violations
}

fn compare_keys<V>(
    what: &str,
    current: &BTreeMap<String, V>,
    baseline: &BTreeMap<String, V>,
    violations: &mut Vec<String>,
) {
    for k in baseline.keys() {
        if !current.contains_key(k) {
            violations.push(format!("{what} {k}: present in baseline, missing now"));
        }
    }
    for k in current.keys() {
        if !baseline.contains_key(k) {
            violations.push(format!("{what} {k}: new metric absent from baseline"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_nearest_rank_over_edges() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 7, 50, 60, 70, 500, 5000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.counts, vec![2, 3, 1, 1]);
        assert_eq!(h.percentile(50), 100); // rank 4 lands in (10,100]
        assert_eq!(h.percentile(95), 5000); // overflow bucket → max
        assert_eq!(h.max, 5000);
        assert_eq!(Histogram::new(&[1]).percentile(99), 0);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::new(&[10, 100]);
        a.record(5);
        a.record(50);
        let mut b = Histogram::new(&[10, 100]);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 555);
        assert_eq!(a.max, 500);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_refuses_different_bounds() {
        let mut a = Histogram::new(&[10]);
        a.merge(&Histogram::new(&[20]));
    }

    #[test]
    fn snapshot_bytes_are_stable_and_round_trip() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.inc("runs.total", 3);
            r.inc("faults.injected", 1);
            r.set_gauge("workers", 4);
            r.observe("latency", &VT_LATENCY_BOUNDS_US, 42_000);
            r.observe("latency", &VT_LATENCY_BOUNDS_US, 2_000_000);
            r.snapshot_json()
        };
        let a = build();
        assert_eq!(a, build(), "snapshots are byte-stable");
        let snap = parse_snapshot(&a).unwrap();
        assert_eq!(snap.counters["runs.total"], 3);
        assert_eq!(snap.histograms["latency"].count, 2);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        let mut r = MetricsRegistry::new();
        r.inc("x", 1);
        let bad = r.snapshot_json().replace(SNAPSHOT_SCHEMA, "eclair-obs/v0");
        assert!(parse_snapshot(&bad).unwrap_err().contains("schema"));
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe("h", &[10], 5);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.inc("only_b", 7);
        b.observe("h", &[10], 50);
        b.set_gauge("g", -3);
        a.merge(&b);
        assert_eq!(a.counters["n"], 3);
        assert_eq!(a.counters["only_b"], 7);
        assert_eq!(a.gauges["g"], -3);
        assert_eq!(a.histograms["h"].counts, vec![1, 1]);
    }

    #[test]
    fn absorb_perf_exposes_cache_counters() {
        let c = eclair_trace::perf::PerfCounters {
            frame_cache_hits: 9,
            cached_tokens: 1234,
            shared_hits: 4,
            single_flight_waits: 2,
            shared_cached_tokens: 77,
            ..Default::default()
        };
        let mut r = MetricsRegistry::new();
        r.absorb_perf(&c);
        assert_eq!(r.counters["cache.frame_hits"], 9);
        assert_eq!(r.counters["cache.cached_tokens"], 1234);
        assert_eq!(r.counters["cache.frame_misses"], 0);
        assert_eq!(r.counters["shared.hits"], 4);
        assert_eq!(r.counters["shared.single_flight_waits"], 2);
        assert_eq!(r.counters["shared.cached_tokens"], 77);
        assert_eq!(r.counters["shared.misses"], 0);
    }

    #[test]
    fn baseline_check_flags_drift_missing_and_new() {
        let mut base = MetricsRegistry::new();
        base.inc("runs", 100);
        base.inc("gone", 1);
        base.observe("lat", &[10, 100], 50);
        let baseline = parse_snapshot(&base.snapshot_json()).unwrap();

        let mut cur = MetricsRegistry::new();
        cur.inc("runs", 103); // 3% over
        cur.inc("fresh", 1);
        cur.observe("lat", &[10, 100], 50);
        let current = parse_snapshot(&cur.snapshot_json()).unwrap();

        let v = baseline_check(&current, &baseline, 5.0);
        assert!(v.iter().any(|s| s.contains("gone")), "{v:?}");
        assert!(v.iter().any(|s| s.contains("fresh")), "{v:?}");
        assert!(
            !v.iter().any(|s| s.contains("counter runs")),
            "3% drift within 5% tolerance: {v:?}"
        );
        let strict = baseline_check(&current, &baseline, 1.0);
        assert!(strict.iter().any(|s| s.contains("counter runs")));
        // Identical snapshots pass at zero tolerance.
        assert!(baseline_check(&baseline, &baseline, 0.0).is_empty());
    }
}

//! Query, aggregate, and diff flight-record traces.
//!
//! This is the library behind the `eclair-analyze` binary: pure
//! functions from parsed event streams to filtered views, rollup
//! aggregates, and divergence reports. Everything renders
//! deterministically (sorted maps, no wall-clock), so two invocations
//! over byte-identical traces produce byte-identical output.

use std::collections::BTreeMap;

use eclair_trace::{EventKind, TraceEvent};

/// A filter over an event stream. All populated criteria must hold
/// (conjunction); `Default` matches everything.
#[derive(Debug, Clone, Default)]
pub struct TraceQuery {
    /// Keep events inside at least one span of this kind name (the
    /// event's ancestor chain is consulted, so `step` keeps everything
    /// nested under any step span, including the span boundaries).
    pub span_kind: Option<String>,
    /// Keep events of this kind (stable lower-case name: `fm_call`,
    /// `fault_injected`, `span_start`, `note`, …).
    pub event_kind: Option<String>,
    /// Keep events belonging to the `n`-th root span subtree (0-based;
    /// in a merged fleet trace, root subtree == run).
    pub run: Option<usize>,
    /// Keep events with `vt >= vt_min`.
    pub vt_min: Option<u64>,
    /// Keep events with `vt <= vt_max`.
    pub vt_max: Option<u64>,
    /// Keep at most this many events (after the other filters).
    pub limit: Option<usize>,
}

/// Stable lower-case name of an event kind (query vocabulary).
pub fn event_kind_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::SpanStart { .. } => "span_start",
        EventKind::SpanEnd { .. } => "span_end",
        EventKind::FmCall { .. } => "fm_call",
        EventKind::GroundingAttempt { .. } => "grounding_attempt",
        EventKind::Retry { .. } => "retry",
        EventKind::PopupEscape { .. } => "popup_escape",
        EventKind::FaultInjected { .. } => "fault_injected",
        EventKind::ValidatorVerdict { .. } => "validator_verdict",
        EventKind::CompiledStep { .. } => "compiled_step",
        EventKind::DriftDetected { .. } => "drift_detected",
        EventKind::FallbackStep { .. } => "fallback_step",
        EventKind::Recompiled { .. } => "recompiled",
        EventKind::Note { .. } => "note",
    }
}

impl TraceQuery {
    /// Apply the query, preserving stream order.
    pub fn filter<'a>(&self, events: &'a [TraceEvent]) -> Vec<&'a TraceEvent> {
        let mut stack: Vec<&'static str> = Vec::new();
        let mut root_index: Option<usize> = None;
        let mut roots_seen = 0usize;
        let mut out = Vec::new();
        for e in events {
            // Track the open-span kind stack and which root subtree we
            // are in. Span boundaries count as inside their own span.
            if let EventKind::SpanStart { kind, .. } = &e.kind {
                if stack.is_empty() {
                    root_index = Some(roots_seen);
                    roots_seen += 1;
                }
                stack.push(kind.name());
            }
            let keep = self
                .span_kind
                .as_ref()
                .is_none_or(|k| stack.iter().any(|s| s == k))
                && self
                    .event_kind
                    .as_ref()
                    .is_none_or(|k| event_kind_name(&e.kind) == k)
                && self.run.is_none_or(|r| root_index == Some(r))
                && self.vt_min.is_none_or(|m| e.vt >= m)
                && self.vt_max.is_none_or(|m| e.vt <= m);
            if let EventKind::SpanEnd { .. } = &e.kind {
                stack.pop();
                if stack.is_empty() {
                    // The closing event itself still belongs to the
                    // subtree; reset after the keep decision.
                    if keep && self.limit.is_none_or(|l| out.len() < l) {
                        out.push(e);
                    }
                    root_index = None;
                    continue;
                }
            }
            if keep && self.limit.is_none_or(|l| out.len() < l) {
                out.push(e);
            }
        }
        out
    }
}

/// Rollup of one (possibly filtered) event view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Events in the view.
    pub events: u64,
    /// FM calls and their token totals.
    pub fm_calls: u64,
    /// Prompt tokens over the view's FM calls.
    pub prompt_tokens: u64,
    /// Completion tokens over the view's FM calls.
    pub completion_tokens: u64,
    /// Chaos faults, by fault name.
    pub faults: BTreeMap<String, u64>,
    /// Retry events.
    pub retries: u64,
    /// Popup escapes.
    pub popup_escapes: u64,
    /// Spans opened, by kind name.
    pub spans: BTreeMap<String, u64>,
    /// Largest `vt` stamp in the view (the virtual end time).
    pub vt_end_us: u64,
}

/// Aggregate a view produced by [`TraceQuery::filter`] (or a full
/// stream).
pub fn aggregate<'a, I>(events: I) -> Aggregate
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut a = Aggregate::default();
    for e in events {
        a.events += 1;
        a.vt_end_us = a.vt_end_us.max(e.vt);
        match &e.kind {
            EventKind::FmCall {
                prompt_tokens,
                completion_tokens,
                ..
            } => {
                a.fm_calls += 1;
                a.prompt_tokens += prompt_tokens;
                a.completion_tokens += completion_tokens;
            }
            EventKind::FaultInjected { fault, .. } => {
                *a.faults.entry(fault.clone()).or_insert(0) += 1;
            }
            EventKind::Retry { .. } => a.retries += 1,
            EventKind::PopupEscape { .. } => a.popup_escapes += 1,
            EventKind::SpanStart { kind, .. } => {
                *a.spans.entry(kind.name().to_string()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    a
}

/// Render an aggregate as stable `key = value` lines.
pub fn render_aggregate(a: &Aggregate) -> String {
    let mut out = String::new();
    out.push_str(&format!("events = {}\n", a.events));
    out.push_str(&format!("vt_end_us = {}\n", a.vt_end_us));
    out.push_str(&format!(
        "fm_calls = {} (prompt {}, completion {})\n",
        a.fm_calls, a.prompt_tokens, a.completion_tokens
    ));
    out.push_str(&format!(
        "retries = {}, popup_escapes = {}\n",
        a.retries, a.popup_escapes
    ));
    for (kind, n) in &a.spans {
        out.push_str(&format!("spans.{kind} = {n}\n"));
    }
    for (fault, n) in &a.faults {
        out.push_str(&format!("faults.{fault} = {n}\n"));
    }
    out
}

/// One rendered event line: `seq`, `vt`, nesting depth, payload.
pub fn render_event(e: &TraceEvent, depth: usize) -> String {
    let payload = match &e.kind {
        EventKind::SpanStart { kind, label, .. } => format!("> {} «{}»", kind.name(), label),
        EventKind::SpanEnd { kind, .. } => format!("< {}", kind.name()),
        EventKind::FmCall {
            purpose,
            prompt_tokens,
            completion_tokens,
        } => format!("fm {purpose} ({prompt_tokens}p+{completion_tokens}c)"),
        EventKind::GroundingAttempt { strategy, outcome } => {
            format!("ground {strategy}: {outcome:?}")
        }
        EventKind::Retry { what } => format!("retry {what}"),
        EventKind::PopupEscape { url } => format!("popup-escape at {url}"),
        EventKind::FaultInjected { step, fault } => format!("fault {fault} @ step {step}"),
        EventKind::ValidatorVerdict { validator, passed } => {
            format!(
                "verdict {validator}: {}",
                if *passed { "pass" } else { "fail" }
            )
        }
        EventKind::CompiledStep { step, selector } => {
            format!("compiled step {step} -> {selector}")
        }
        EventKind::DriftDetected { step, reason } => format!("drift @ step {step}: {reason}"),
        EventKind::FallbackStep { step, query } => format!("fallback @ step {step}: {query}"),
        EventKind::Recompiled { step, selector } => {
            format!("recompiled step {step} -> {selector}")
        }
        EventKind::Note { text } => format!("note: {text}"),
    };
    format!(
        "{:>6} {:>12} {}{}",
        e.seq,
        e.vt,
        "  ".repeat(depth),
        payload
    )
}

/// Render a filtered view with indentation recovered from the *full*
/// stream's span structure (depths are looked up by `seq`).
pub fn render_view(full: &[TraceEvent], view: &[&TraceEvent]) -> String {
    // Precompute depth at each event of the full stream.
    let mut depths: BTreeMap<u64, usize> = BTreeMap::new();
    let mut depth = 0usize;
    for e in full {
        match &e.kind {
            EventKind::SpanStart { .. } => {
                depths.insert(e.seq, depth);
                depth += 1;
            }
            EventKind::SpanEnd { .. } => {
                depth = depth.saturating_sub(1);
                depths.insert(e.seq, depth);
            }
            _ => {
                depths.insert(e.seq, depth);
            }
        }
    }
    let mut out = String::new();
    for e in view {
        out.push_str(&render_event(e, depths.get(&e.seq).copied().unwrap_or(0)));
        out.push('\n');
    }
    out
}

/// Where two traces diverge, plus both sides' aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Events in each trace.
    pub len: (u64, u64),
    /// Seq of the first event where the streams differ (`None` when one
    /// is a prefix of the other or they are identical).
    pub first_divergence: Option<u64>,
    /// Side-by-side rollups.
    pub aggregates: (Aggregate, Aggregate),
}

impl TraceDiff {
    /// True when the streams are event-for-event identical.
    pub fn identical(&self) -> bool {
        self.first_divergence.is_none() && self.len.0 == self.len.1
    }
}

/// Compare two traces event-for-event.
pub fn diff_traces(a: &[TraceEvent], b: &[TraceEvent]) -> TraceDiff {
    let first_divergence = a
        .iter()
        .zip(b.iter())
        .find(|(x, y)| x != y)
        .map(|(x, _)| x.seq);
    TraceDiff {
        len: (a.len() as u64, b.len() as u64),
        first_divergence,
        aggregates: (aggregate(a), aggregate(b)),
    }
}

/// Render a diff: verdict line, then any aggregate fields that differ.
pub fn render_diff(d: &TraceDiff) -> String {
    let mut out = String::new();
    if d.identical() {
        out.push_str(&format!("identical: {} events\n", d.len.0));
        return out;
    }
    match d.first_divergence {
        Some(seq) => out.push_str(&format!(
            "diverge at seq {seq} ({} vs {} events)\n",
            d.len.0, d.len.1
        )),
        None => out.push_str(&format!(
            "prefix match, lengths differ ({} vs {} events)\n",
            d.len.0, d.len.1
        )),
    }
    let (a, b) = &d.aggregates;
    for (name, x, y) in [
        ("events", a.events, b.events),
        ("fm_calls", a.fm_calls, b.fm_calls),
        ("prompt_tokens", a.prompt_tokens, b.prompt_tokens),
        (
            "completion_tokens",
            a.completion_tokens,
            b.completion_tokens,
        ),
        ("retries", a.retries, b.retries),
        ("popup_escapes", a.popup_escapes, b.popup_escapes),
        ("vt_end_us", a.vt_end_us, b.vt_end_us),
    ] {
        if x != y {
            out.push_str(&format!("  {name}: {x} vs {y}\n"));
        }
    }
    let fault_keys: std::collections::BTreeSet<&String> =
        a.faults.keys().chain(b.faults.keys()).collect();
    for k in fault_keys {
        let (x, y) = (
            a.faults.get(k).copied().unwrap_or(0),
            b.faults.get(k).copied().unwrap_or(0),
        );
        if x != y {
            out.push_str(&format!("  faults.{k}: {x} vs {y}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_trace::{CostKind, SpanKind, TraceRecorder, VirtualClock};

    fn two_run_trace() -> Vec<TraceEvent> {
        let mut streams = Vec::new();
        for run in 0..2u64 {
            let mut t = TraceRecorder::new();
            t.set_clock(VirtualClock::new(3, run));
            let exec = t.open(SpanKind::Execute, &format!("run {run}"));
            t.clock_begin_step(1);
            t.advance(CostKind::StepInit, 0);
            let step = t.open(SpanKind::Step, "step 1");
            t.event(EventKind::FmCall {
                purpose: "suggest".into(),
                prompt_tokens: 100,
                completion_tokens: 10,
            });
            if run == 1 {
                t.event(EventKind::FaultInjected {
                    step: 1,
                    fault: "stale-frame".into(),
                });
            }
            t.close(step);
            t.close(exec);
            streams.push(t.take_events());
        }
        eclair_trace::merge_event_streams(streams.iter().map(|s| s.as_slice())).unwrap()
    }

    #[test]
    fn query_filters_by_span_event_run_and_vt() {
        let events = two_run_trace();
        let q = TraceQuery {
            event_kind: Some("fm_call".into()),
            ..Default::default()
        };
        assert_eq!(q.filter(&events).len(), 2);

        let q = TraceQuery {
            run: Some(1),
            event_kind: Some("fault_injected".into()),
            ..Default::default()
        };
        assert_eq!(q.filter(&events).len(), 1);
        let q0 = TraceQuery {
            run: Some(0),
            event_kind: Some("fault_injected".into()),
            ..Default::default()
        };
        assert!(q0.filter(&events).is_empty());

        let q = TraceQuery {
            span_kind: Some("step".into()),
            ..Default::default()
        };
        let inside_step = q.filter(&events);
        assert!(inside_step.iter().all(
            |e| !matches!(e.kind, EventKind::SpanStart { kind, .. } if kind == SpanKind::Execute)
        ));
        assert!(!inside_step.is_empty());

        let q = TraceQuery {
            vt_min: Some(1),
            limit: Some(3),
            ..Default::default()
        };
        assert_eq!(q.filter(&events).len(), 3);
    }

    #[test]
    fn aggregate_rolls_up_tokens_faults_and_spans() {
        let events = two_run_trace();
        let a = aggregate(&events);
        assert_eq!(a.fm_calls, 2);
        assert_eq!(a.prompt_tokens, 200);
        assert_eq!(a.completion_tokens, 20);
        assert_eq!(a.faults.get("stale-frame"), Some(&1));
        assert_eq!(a.spans["execute"], 2);
        assert_eq!(a.spans["step"], 2);
        assert!(a.vt_end_us > 0);
        let rendered = render_aggregate(&a);
        assert!(rendered.contains("fm_calls = 2 (prompt 200, completion 20)"));
        assert!(rendered.contains("faults.stale-frame = 1"));
    }

    #[test]
    fn diff_reports_divergence_and_identity() {
        let a = two_run_trace();
        let b = two_run_trace();
        let d = diff_traces(&a, &b);
        assert!(d.identical());
        assert!(render_diff(&d).starts_with("identical"));

        let mut c = two_run_trace();
        let i = c
            .iter()
            .position(|e| matches!(e.kind, EventKind::FmCall { .. }))
            .unwrap();
        if let EventKind::FmCall { prompt_tokens, .. } = &mut c[i].kind {
            *prompt_tokens += 1;
        }
        let d = diff_traces(&a, &c);
        assert_eq!(d.first_divergence, Some(a[i].seq));
        let r = render_diff(&d);
        assert!(r.contains("diverge at seq"));
        assert!(r.contains("prompt_tokens: 200 vs 201"));
    }

    #[test]
    fn render_view_indents_by_span_depth() {
        let events = two_run_trace();
        let q = TraceQuery::default();
        let view = q.filter(&events);
        assert_eq!(view.len(), events.len(), "empty query keeps everything");
        let text = render_view(&events, &view);
        let fm_line = text
            .lines()
            .find(|l| l.contains("fm suggest"))
            .expect("fm call rendered");
        assert!(
            fm_line.contains("    fm suggest (100p+10c)"),
            "depth-2 indent: {fm_line:?}"
        );
    }
}

//! `eclair-analyze` — query CLI over JSONL flight records and metrics
//! snapshots.
//!
//! ```text
//! eclair-analyze query <trace.jsonl> [--span-kind K] [--event-kind K]
//!                                    [--run N] [--vt-min US] [--vt-max US]
//!                                    [--limit N]
//! eclair-analyze aggregate <trace.jsonl> [same filters]
//! eclair-analyze profile <trace.jsonl>
//! eclair-analyze diff <a.jsonl> <b.jsonl>
//! eclair-analyze baseline check <metrics.json> --baseline <file> [--tol PCT]
//! ```
//!
//! Output is deterministic: byte-identical traces produce byte-identical
//! reports. Exit status is 0 on success, 1 on usage/IO errors, and 2
//! when `diff` finds divergence or `baseline check` finds violations —
//! so CI can gate directly on the exit code.

use std::process::ExitCode;

use eclair_obs::{
    aggregate, baseline_check, diff_traces, parse_snapshot, profile_spans, render_aggregate,
    render_diff, render_flamegraph, render_view, TraceQuery,
};
use eclair_trace::{read_jsonl, TraceEvent};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("eclair-analyze: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "query" => {
            let (path, query) = parse_trace_args(&args[1..])?;
            let events = load_trace(&path)?;
            print!("{}", render_view(&events, &query.filter(&events)));
            Ok(ExitCode::SUCCESS)
        }
        "aggregate" => {
            let (path, query) = parse_trace_args(&args[1..])?;
            let events = load_trace(&path)?;
            let view = query.filter(&events);
            print!("{}", render_aggregate(&aggregate(view.iter().copied())));
            Ok(ExitCode::SUCCESS)
        }
        "profile" => {
            let (path, _) = parse_trace_args(&args[1..])?;
            let events = load_trace(&path)?;
            print!("{}", render_flamegraph(&profile_spans(&events)));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [a, b] = &args[1..] else {
                return Err("diff takes exactly two trace paths".to_string());
            };
            let d = diff_traces(&load_trace(a)?, &load_trace(b)?);
            print!("{}", render_diff(&d));
            Ok(if d.identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        "baseline" => {
            if args.get(1).map(String::as_str) != Some("check") {
                return Err(
                    "usage: baseline check <metrics.json> --baseline <file> [--tol PCT]"
                        .to_string(),
                );
            }
            let rest = &args[2..];
            let path = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or("baseline check needs a current metrics snapshot path")?;
            let baseline_path =
                flag_value(rest, "--baseline")?.ok_or("--baseline <file> is required")?;
            let tol: f64 = match flag_value(rest, "--tol")? {
                Some(t) => t.parse().map_err(|_| format!("bad --tol value {t:?}"))?,
                None => 0.0,
            };
            let current = parse_snapshot(&read_file(path)?)?;
            let baseline = parse_snapshot(&read_file(&baseline_path)?)?;
            let violations = baseline_check(&current, &baseline, tol);
            if violations.is_empty() {
                println!(
                    "baseline ok: {} counters, {} gauges, {} histograms within {tol}%",
                    current.counters.len(),
                    current.gauges.len(),
                    current.histograms.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                for v in &violations {
                    println!("violation: {v}");
                }
                println!("{} violation(s) against {baseline_path}", violations.len());
                Ok(ExitCode::from(2))
            }
        }
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: eclair-analyze <query|aggregate|profile|diff|baseline> ...\n\
     query/aggregate/profile <trace.jsonl> [--span-kind K] [--event-kind K] \
     [--run N] [--vt-min US] [--vt-max US] [--limit N]\n\
     diff <a.jsonl> <b.jsonl>\n\
     baseline check <metrics.json> --baseline <file> [--tol PCT]"
        .to_string()
}

fn parse_trace_args(args: &[String]) -> Result<(String, TraceQuery), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("a trace path is required")?
        .clone();
    let rest = &args[1..];
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        flag_value(rest, name)?
            .map(|v| v.parse().map_err(|_| format!("bad {name} value {v:?}")))
            .transpose()
    };
    let query = TraceQuery {
        span_kind: flag_value(rest, "--span-kind")?,
        event_kind: flag_value(rest, "--event-kind")?,
        run: parse_u64("--run")?.map(|n| n as usize),
        vt_min: parse_u64("--vt-min")?,
        vt_max: parse_u64("--vt-max")?,
        limit: parse_u64("--limit")?.map(|n| n as usize),
    };
    Ok((path, query))
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or(format!("{flag} needs a value")),
        None => Ok(None),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    read_jsonl(&read_file(path)?)
}

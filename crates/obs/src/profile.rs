//! The span profiler: rebuild the span tree from a flight record and
//! attribute virtual time to it.
//!
//! Every [`TraceEvent`] carries a `vt` stamp (microseconds of simulated
//! time; see `eclair_trace::vclock`). A span's **inclusive** time is the
//! stamp difference between its `SpanEnd` and `SpanStart`; its
//! **exclusive** time subtracts the inclusive time of its direct
//! children. Exclusive times telescope: summed over all spans they equal
//! the inclusive time of the roots exactly, which is the additivity
//! invariant the crucible's `vt-additive` oracle pins across every
//! chaos scenario.
//!
//! The profile renders as a deterministic text flamegraph — paths sorted
//! by exclusive time (descending, then lexicographically), bar widths
//! proportional to the root total — so two traces can be compared with
//! `diff`.

use std::collections::BTreeMap;

use eclair_trace::{EventKind, TraceEvent};

/// Virtual-time attribution for one span kind or one call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Spans of this kind/path that closed.
    pub count: u64,
    /// Total inclusive virtual time, microseconds.
    pub inclusive_us: u64,
    /// Total exclusive virtual time (inclusive minus direct children).
    pub exclusive_us: u64,
}

/// What the profiler recovered from one event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanProfile {
    /// Attribution per span kind name (`"step"`, `"ground"`, …).
    pub kinds: BTreeMap<String, SpanStat>,
    /// Attribution per root-to-span path, `;`-joined
    /// (`"execute;step;actuate"`).
    pub paths: BTreeMap<String, SpanStat>,
    /// Summed inclusive time of root spans (= total accounted time).
    pub total_root_us: u64,
    /// Summed exclusive time of all spans. Equals [`Self::total_root_us`]
    /// whenever the stream is well-formed — the additivity invariant.
    pub exclusive_sum_us: u64,
    /// Spans whose end stamp preceded their start stamp (a virtual-clock
    /// bug if ever nonzero; durations are clamped to 0 in the stats).
    pub negative_spans: u64,
    /// Spans still open when the stream ended.
    pub unclosed: u64,
}

impl SpanProfile {
    /// Whether exclusive times telescope back to the root total, i.e.
    /// virtual-time accounting is additive over the span tree.
    pub fn is_additive(&self) -> bool {
        self.exclusive_sum_us == self.total_root_us
            && self.negative_spans == 0
            && self.unclosed == 0
    }
}

struct OpenSpan {
    id: u64,
    kind_name: &'static str,
    path: String,
    start_vt: u64,
    child_inclusive_us: u64,
}

/// Profile one event stream. Tolerates structurally odd streams (orphan
/// ends are ignored, unclosed spans are counted) — auditing is
/// `eclair_trace::audit_spans`'s job; the profiler extracts as much
/// timing as the stream supports.
pub fn profile_spans(events: &[TraceEvent]) -> SpanProfile {
    let mut profile = SpanProfile::default();
    let mut stack: Vec<OpenSpan> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::SpanStart { id, kind, .. } => {
                let path = match stack.last() {
                    Some(parent) => format!("{};{}", parent.path, kind.name()),
                    None => kind.name().to_string(),
                };
                stack.push(OpenSpan {
                    id: *id,
                    kind_name: kind.name(),
                    path,
                    start_vt: e.vt,
                    child_inclusive_us: 0,
                });
            }
            EventKind::SpanEnd { id, .. } => {
                // Only close the innermost span when ids agree; anything
                // else is malformed input the audit reports separately.
                if stack.last().is_none_or(|s| s.id != *id) {
                    continue;
                }
                let span = stack.pop().expect("non-empty checked above");
                let inclusive = if e.vt < span.start_vt {
                    profile.negative_spans += 1;
                    0
                } else {
                    e.vt - span.start_vt
                };
                let exclusive = inclusive.saturating_sub(span.child_inclusive_us);
                for stat in [
                    profile.kinds.entry(span.kind_name.to_string()).or_default(),
                    profile.paths.entry(span.path).or_default(),
                ] {
                    stat.count += 1;
                    stat.inclusive_us += inclusive;
                    stat.exclusive_us += exclusive;
                }
                profile.exclusive_sum_us += exclusive;
                match stack.last_mut() {
                    Some(parent) => parent.child_inclusive_us += inclusive,
                    None => profile.total_root_us += inclusive,
                }
            }
            _ => {}
        }
    }
    profile.unclosed = stack.len() as u64;
    profile
}

/// Inclusive virtual duration of every closed span, grouped by span-kind
/// name in stream order — the raw samples behind per-phase latency
/// percentiles (the aggregated [`SpanProfile`] keeps only totals).
pub fn span_inclusive_durations(events: &[TraceEvent]) -> BTreeMap<String, Vec<u64>> {
    let mut stack: Vec<(u64, &'static str, u64)> = Vec::new();
    let mut out: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for e in events {
        match &e.kind {
            EventKind::SpanStart { id, kind, .. } => stack.push((*id, kind.name(), e.vt)),
            EventKind::SpanEnd { id, .. }
                if stack.last().is_some_and(|(open_id, _, _)| open_id == id) =>
            {
                let (_, kind_name, start_vt) = stack.pop().expect("non-empty checked above");
                out.entry(kind_name.to_string())
                    .or_default()
                    .push(e.vt.saturating_sub(start_vt));
            }
            _ => {}
        }
    }
    out
}

/// Width of the flamegraph bar column.
const BAR_WIDTH: u64 = 40;

/// Render a profile as a deterministic text flamegraph over call paths:
/// one line per path, sorted by exclusive time descending (ties broken
/// lexicographically), with a `#` bar proportional to the share of the
/// root total.
pub fn render_flamegraph(profile: &SpanProfile) -> String {
    let mut rows: Vec<(&String, &SpanStat)> = profile.paths.iter().collect();
    rows.sort_by(|a, b| b.1.exclusive_us.cmp(&a.1.exclusive_us).then(a.0.cmp(b.0)));
    let total = profile.total_root_us.max(1);
    let path_width = rows.iter().map(|(p, _)| p.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<path_width$}  {:>6}  {:>12}  {:>12}  {:>6}\n",
        "path", "count", "inclusive_us", "exclusive_us", "excl%"
    ));
    for (path, s) in rows {
        let bar_len = (s.exclusive_us * BAR_WIDTH / total) as usize;
        out.push_str(&format!(
            "{:<path_width$}  {:>6}  {:>12}  {:>12}  {:>5.1}%  {}\n",
            path,
            s.count,
            s.inclusive_us,
            s.exclusive_us,
            s.exclusive_us as f64 * 100.0 / total as f64,
            "#".repeat(bar_len),
        ));
    }
    out.push_str(&format!(
        "total {} us over {} root-us ({} paths; additive: {})\n",
        profile.exclusive_sum_us,
        profile.total_root_us,
        profile.paths.len(),
        if profile.is_additive() { "yes" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_trace::{CostKind, SpanKind, TraceRecorder, VirtualClock};

    fn sample_events() -> Vec<TraceEvent> {
        let mut t = TraceRecorder::new();
        t.set_clock(VirtualClock::new(7, 0));
        let exec = t.open(SpanKind::Execute, "wf");
        t.clock_begin_step(1);
        t.advance(CostKind::StepInit, 0);
        let step = t.open(SpanKind::Step, "step 1");
        let obs = t.open(SpanKind::Observe, "shot");
        t.advance(CostKind::Observe, 0);
        t.close(obs);
        let act = t.open(SpanKind::Actuate, "click");
        t.advance(CostKind::Actuate, 0);
        t.close(act);
        t.close(step);
        t.close(exec);
        t.take_events()
    }

    #[test]
    fn exclusive_times_telescope_to_root_total() {
        let p = profile_spans(&sample_events());
        assert!(p.is_additive(), "{p:?}");
        assert!(p.total_root_us > 0);
        assert_eq!(p.kinds["observe"].count, 1);
        assert_eq!(p.kinds["actuate"].count, 1);
        // The execute span contains everything, so its inclusive time is
        // the root total; its exclusive time excludes the step subtree.
        assert_eq!(p.kinds["execute"].inclusive_us, p.total_root_us);
        assert!(p.kinds["execute"].exclusive_us < p.total_root_us);
        assert_eq!(p.paths["execute;step;observe"].count, 1);
    }

    #[test]
    fn unclosed_and_orphan_spans_are_tolerated() {
        let mut events = sample_events();
        events.pop(); // drop the Execute SpanEnd → one unclosed span
        let p = profile_spans(&events);
        assert_eq!(p.unclosed, 1);
        assert!(!p.is_additive());
        // An orphan end (id never opened) is skipped, not a panic.
        let only_end = &sample_events()[events.len()..];
        let p2 = profile_spans(only_end);
        assert_eq!(p2.total_root_us, 0);
    }

    #[test]
    fn flamegraph_is_deterministic_and_ranked() {
        let a = render_flamegraph(&profile_spans(&sample_events()));
        let b = render_flamegraph(&profile_spans(&sample_events()));
        assert_eq!(a, b);
        assert!(a.contains("additive: yes"));
        // Step init (≤12ms) is cheaper than any leaf advance (≥15ms), so
        // the widest exclusive slice is a leaf under execute;step.
        let first_data_line = a.lines().nth(1).unwrap();
        assert!(
            first_data_line.starts_with("execute;step;"),
            "widest span first: {first_data_line}"
        );
    }

    #[test]
    fn empty_stream_profiles_to_zero() {
        let p = profile_spans(&[]);
        assert_eq!(p, SpanProfile::default());
        assert!(p.is_additive());
        assert!(render_flamegraph(&p).contains("additive: yes"));
    }
}

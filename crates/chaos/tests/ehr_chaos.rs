//! Chaos-compatibility sweep for the EHR site: all seven fault kinds
//! inject cleanly on [`EhrApp`] pages, and after the standard recovery
//! move (dismiss the dialog, re-login) the session is fully drivable —
//! the census renders, probes answer, and a real workflow still lands.

use eclair_chaos::{ChaosProfile, ChaosSchedule, ChaosSession, FaultKind};
use eclair_gui::event::{Dispatch, EffectKind};
use eclair_gui::{DriftOp, GuiSurface, Key, Theme, UserEvent};
use eclair_sites::ehr::EhrApp;

fn chaos(kind: FaultKind) -> ChaosSession {
    let sched = ChaosSchedule::new(ChaosProfile::only(0xE4A, 1.0, kind), 0);
    ChaosSession::new(Box::new(EhrApp::new()), sched)
}

fn click_by_label(s: &mut ChaosSession, label: &str) -> Dispatch {
    let shot = s.screenshot();
    let item = shot
        .items
        .iter()
        .find(|i| i.text == label)
        .unwrap_or_else(|| panic!("no item labelled {label:?}"))
        .clone();
    s.dispatch(UserEvent::Click(item.rect.center()))
}

/// Clear whatever the fault left behind so the page is drivable again.
fn recover(s: &mut ChaosSession) {
    if s.modal_open() {
        let esc = s.dispatch(UserEvent::Press(Key::Escape));
        if esc.effect != EffectKind::Dismissed {
            click_by_label(s, "Stay signed in");
        }
    }
    if s.expired() {
        click_by_label(s, "Log in");
    }
}

#[test]
fn every_fault_kind_injects_on_ehr_pages() {
    for kind in FaultKind::ALL {
        let mut s = chaos(kind);
        // Give the stale-frame fault a previous frame to serve.
        let _ = s.screenshot();
        s.begin_step(1);
        let notes = s.drain_fault_notes();
        assert!(
            notes.iter().any(|n| n.fault == kind.name()),
            "{}: fault did not arm on the EHR census (notes: {notes:?})",
            kind.name()
        );
        // Clear blocking faults (modal, expiry) first, then let the
        // one-shot channel faults consume the event they were armed for.
        recover(&mut s);
        let _ = click_by_label(&mut s, "Authorizations");
        assert!(
            s.faults_injected() >= 1,
            "{}: nothing injected",
            kind.name()
        );
        assert_eq!(
            s.inner().app().probe("patient_count").as_deref(),
            Some("8"),
            "{}: probes stopped answering",
            kind.name()
        );
        let back = click_by_label(&mut s, "Patients");
        assert_eq!(back.effect, EffectKind::Activated, "{}", kind.name());
        assert!(GuiSurface::url(&s).contains("/ehr/patients"));
    }
}

#[test]
fn session_expiry_on_ehr_redirects_and_relogin_restores_the_chart() {
    let mut s = chaos(FaultKind::SessionExpiry);
    // Navigate to a chart first, then expire on the next step.
    let open = click_by_label(&mut s, "MRN-2001");
    assert_eq!(open.effect, EffectKind::Activated);
    assert_eq!(GuiSurface::url(&s), "/ehr/patients/MRN-2001");
    s.begin_step(1);
    assert!(s.expired());
    assert_eq!(GuiSurface::url(&s), "/login");
    click_by_label(&mut s, "Log in");
    assert!(!s.expired());
    assert_eq!(GuiSurface::url(&s), "/ehr/patients/MRN-2001");
}

#[test]
fn modal_blocks_ehr_input_until_dismissed() {
    let mut s = chaos(FaultKind::PromoModal);
    s.begin_step(1);
    assert!(s.modal_open());
    // The dialog captures the click aimed at the census row underneath.
    let blocked = click_by_label(&mut s, "MRN-2001");
    assert_ne!(blocked.effect, EffectKind::Activated);
    assert_eq!(GuiSurface::url(&s), "/ehr/patients");
    let esc = s.dispatch(UserEvent::Press(Key::Escape));
    assert_eq!(esc.effect, EffectKind::Dismissed);
    let open = click_by_label(&mut s, "MRN-2001");
    assert_eq!(open.effect, EffectKind::Activated);
    assert_eq!(GuiSurface::url(&s), "/ehr/patients/MRN-2001");
}

#[test]
fn chaos_composes_with_a_drifted_ehr_theme() {
    // Chaos injection and visual drift are independent layers: a promo
    // modal still arms and dismisses on a re-themed EHR census.
    let theme = Theme::with_ops(vec![
        DriftOp::InsertBanner {
            text: "Scheduled maintenance tonight 22:00–23:00".into(),
        },
        DriftOp::ResizeInputs { width: 340 },
    ]);
    let sched = ChaosSchedule::new(ChaosProfile::only(9, 1.0, FaultKind::PromoModal), 3);
    let mut s = ChaosSession::with_theme(Box::new(EhrApp::new()), sched, theme);
    s.begin_step(1);
    assert!(s.modal_open());
    assert_eq!(
        s.dispatch(UserEvent::Press(Key::Escape)).effect,
        EffectKind::Dismissed
    );
    let open = click_by_label(&mut s, "MRN-2003");
    assert_eq!(open.effect, EffectKind::Activated);
    assert_eq!(GuiSurface::url(&s), "/ehr/patients/MRN-2003");
}

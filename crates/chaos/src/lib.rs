//! # eclair-chaos — deterministic fault injection at the GUI boundary
//!
//! The paper's agents must "use common sense to error correct" (§4.2):
//! surprise dialogs, layout drift between observation and actuation,
//! stale frames, expired sessions, flaky event delivery. This crate turns
//! those hazards into a *seeded, schedulable* perturbation layer so the
//! recovery path can be exercised — and regression-tested — instead of
//! hoped about.
//!
//! The pieces:
//!
//! * [`FaultKind`] / [`FaultSpec`] — the fault vocabulary.
//! * [`ChaosProfile`] / [`ChaosSchedule`] — a pure schedule: the fault at
//!   step `s` is a function of `(chaos_seed, run_id, step)` and nothing
//!   else, so fleets stay byte-reproducible across worker counts.
//! * [`ChaosSession`] — a [`eclair_gui::GuiSurface`] wrapping a real
//!   [`eclair_gui::Session`], arming scheduled faults at each step and
//!   reporting them as [`eclair_gui::FaultNote`]s for trace recording.
//!
//! Executors drive the surface exactly as they drive a pristine session;
//! the only contract addition is calling `begin_step` once per loop
//! iteration and draining fault notes into the trace.

pub mod fault;
pub mod schedule;
pub mod session;

pub use fault::{FaultKind, FaultSpec};
pub use schedule::{ChaosProfile, ChaosSchedule, SHIFT_PX_RANGE};
pub use session::{ChaosSession, CHAOS_DISMISS_NAME, CHAOS_LOGIN_NAME, CHAOS_MODAL_NAME};

//! The fault vocabulary: what can go wrong at the GUI boundary.
//!
//! Each variant models a perturbation the paper's agents meet in the wild
//! (§4.2's "common sense to error correct"; SmartFlow/EntWorld-style GUI
//! perturbations): surprise dialogs, layout drift between observation and
//! actuation, stale frames, session resets, and unreliable event delivery.

use serde::{Deserialize, Serialize};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// An irrelevant promotional modal opens over the page. It blocks all
    /// input until dismissed (Escape or its "No thanks" button).
    PromoModal,
    /// A blocking confirmation dialog opens over the page ("Your session
    /// will expire soon. Stay signed in?"). Same input capture as
    /// [`FaultKind::PromoModal`] with different text.
    ConfirmModal,
    /// The page shifts under the agent between screenshot and click: the
    /// next click is translated vertically by the spec's `shift_px`, so a
    /// point grounded on the pre-shift frame lands off-target.
    LayoutShift,
    /// Screenshot delivery lags the true page by one dispatch: the next
    /// capture returns the previous frame.
    StaleFrame,
    /// The session expires: the app redirects to a login interstitial and
    /// stays there until the agent re-authenticates.
    SessionExpiry,
    /// The next raw event is silently dropped (never reaches the app).
    DropEvent,
    /// The next raw event is delivered twice (double click, doubled
    /// keystrokes).
    DuplicateEvent,
}

impl FaultKind {
    /// Every injectable kind (the default chaos mix).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::PromoModal,
        FaultKind::ConfirmModal,
        FaultKind::LayoutShift,
        FaultKind::StaleFrame,
        FaultKind::SessionExpiry,
        FaultKind::DropEvent,
        FaultKind::DuplicateEvent,
    ];

    /// Stable kebab-case name (used in trace events and bench output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PromoModal => "promo-modal",
            FaultKind::ConfirmModal => "confirm-modal",
            FaultKind::LayoutShift => "layout-shift",
            FaultKind::StaleFrame => "stale-frame",
            FaultKind::SessionExpiry => "session-expiry",
            FaultKind::DropEvent => "drop-event",
            FaultKind::DuplicateEvent => "duplicate-event",
        }
    }
}

/// One scheduled injection: at the start of executor step `step`, arm
/// `kind`. `shift_px` is the vertical displacement for
/// [`FaultKind::LayoutShift`] (0 for every other kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// 1-based executor step the fault fires at.
    pub step: u64,
    /// What to inject.
    pub kind: FaultKind,
    /// Vertical click displacement in pixels (layout shift only).
    pub shift_px: i32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(FaultKind::StaleFrame.name(), "stale-frame");
    }

    #[test]
    fn every_fault_kind_has_a_virtual_cost_weight() {
        // The virtual clock charges each injected fault by name (see
        // `eclair_trace::fault_cost_weight`); keep the table in sync with
        // the fault vocabulary so no kind silently costs nothing.
        for k in FaultKind::ALL {
            assert!(
                eclair_trace::fault_cost_weight(k.name()) > 0,
                "{} must carry a nonzero virtual-time cost",
                k.name()
            );
        }
        // Pin the relative ordering the bands encode: a session expiry is
        // the most disruptive fault, an event-level glitch the least.
        assert!(
            eclair_trace::fault_cost_weight(FaultKind::SessionExpiry.name())
                > eclair_trace::fault_cost_weight(FaultKind::StaleFrame.name())
        );
    }

    #[test]
    fn specs_serialize() {
        let s = FaultSpec {
            step: 3,
            kind: FaultKind::LayoutShift,
            shift_px: 48,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

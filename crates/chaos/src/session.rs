//! The fault-injecting surface: a [`ChaosSession`] wraps a plain
//! [`Session`] (whose app is wrapped in a [`ChaosApp`]) and perturbs what
//! crosses the GUI boundary according to a [`ChaosSchedule`].
//!
//! Faults split into two families:
//!
//! * **Page faults** (injected modals, session expiry) live in the shared
//!   control block the [`ChaosApp`] consults on every `build()`. They
//!   persist until the agent deals with them — dismisses the dialog,
//!   clicks the re-login button.
//! * **Channel faults** (layout shift, stale frame, drop, duplicate) are
//!   one-shot flags armed at [`GuiSurface::begin_step`] and consumed by
//!   the next matching `screenshot`/`dispatch`. Unconsumed flags are
//!   cleared at the next `begin_step`, so each step sees at most its own
//!   scheduled fault.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use eclair_gui::event::{Dispatch, EffectKind};
use eclair_gui::{
    FaultNote, GuiApp, GuiSurface, Page, PageBuilder, Screenshot, SemanticEvent, Session, Theme,
    UserEvent,
};

use crate::fault::FaultKind;
use crate::schedule::ChaosSchedule;

/// Programmatic name of the injected chaos modal (what
/// `SemanticEvent::Dismissed` carries when Escape closes it).
pub const CHAOS_MODAL_NAME: &str = "chaos-modal";
/// Name of the injected modal's dismiss button.
pub const CHAOS_DISMISS_NAME: &str = "chaos-dismiss";
/// Name of the login button on the session-expiry interstitial.
pub const CHAOS_LOGIN_NAME: &str = "chaos-login";

/// Shared control block: the page faults currently in force.
#[derive(Debug, Default)]
struct Ctl {
    /// Which injected modal (if any) is open over the page.
    modal: Option<FaultKind>,
    /// Whether the session has been expired to the login interstitial.
    expired: bool,
    /// Set when a page fault is armed/cleared; `tick` consumes it to
    /// force a rebuild.
    dirty: bool,
}

/// A [`GuiApp`] wrapper that overlays chaos page faults on an inner app:
/// while `expired`, every route renders the login interstitial; while a
/// modal fault is in force, the inner page gets a blocking dialog
/// appended. Everything else — events, ticks, probes — forwards.
pub struct ChaosApp {
    inner: Box<dyn GuiApp>,
    ctl: Rc<RefCell<Ctl>>,
}

impl ChaosApp {
    fn modal_copy(kind: FaultKind) -> (&'static str, &'static str) {
        match kind {
            FaultKind::ConfirmModal => (
                "Your session will expire soon. Stay signed in?",
                "Stay signed in",
            ),
            // PromoModal is the default flavour; other kinds never reach
            // the modal slot.
            _ => (
                "Limited time offer! Subscribe to our newsletter for 20% off.",
                "No thanks",
            ),
        }
    }
}

impl GuiApp for ChaosApp {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn url(&self) -> String {
        if self.ctl.borrow().expired {
            "/login".into()
        } else {
            self.inner.url()
        }
    }

    fn build(&self) -> Page {
        let ctl = self.ctl.borrow();
        if ctl.expired {
            let mut b = PageBuilder::new("Signed out", "/login");
            b.heading(1, "Session expired");
            b.text("Your session has expired. Please log in again.");
            b.button(CHAOS_LOGIN_NAME, "Log in");
            return b.finish();
        }
        let mut page = self.inner.build();
        if let Some(kind) = ctl.modal {
            let (text, label) = Self::modal_copy(kind);
            page.inject_modal(CHAOS_MODAL_NAME, text, CHAOS_DISMISS_NAME, label);
        }
        page
    }

    fn on_event(&mut self, ev: SemanticEvent) -> bool {
        let mut ctl = self.ctl.borrow_mut();
        if ctl.expired {
            // The interstitial swallows everything except the login button.
            if matches!(&ev, SemanticEvent::Activated { name, .. } if name == CHAOS_LOGIN_NAME) {
                ctl.expired = false;
                return true;
            }
            return false;
        }
        if ctl.modal.is_some() {
            // The dialog captures input until dismissed (button or Escape).
            let dismissed = matches!(
                &ev,
                SemanticEvent::Activated { name, .. } if name == CHAOS_DISMISS_NAME
            ) || matches!(
                &ev,
                SemanticEvent::Dismissed { name } if name == CHAOS_MODAL_NAME
            );
            if dismissed {
                ctl.modal = None;
                return true;
            }
            return false;
        }
        drop(ctl);
        self.inner.on_event(ev)
    }

    fn tick(&mut self) -> bool {
        let dirty = {
            let mut ctl = self.ctl.borrow_mut();
            std::mem::take(&mut ctl.dirty)
        };
        // Inner timers keep advancing under chaos.
        let inner = self.inner.tick();
        dirty || inner
    }

    fn probe(&self, key: &str) -> Option<String> {
        // Success predicates and oracles must see through the wrapper.
        self.inner.probe(key)
    }
}

/// A [`GuiSurface`] that injects scheduled faults around a real session.
pub struct ChaosSession {
    session: Session,
    ctl: Rc<RefCell<Ctl>>,
    schedule: ChaosSchedule,
    /// Frame captured just before the most recent dispatch (what a
    /// stale-frame fault serves). Shared with the session's frame cache —
    /// holding it costs an `Arc` bump, not a deep copy.
    prev_frame: Option<Arc<Screenshot>>,
    stale_next: bool,
    drop_next: bool,
    dup_next: bool,
    /// Vertical displacement applied to the next click (0 = none).
    pending_shift: i32,
    notes: Vec<FaultNote>,
    faults_injected: u64,
}

impl ChaosSession {
    /// Wrap `app` and start a session with the default theme.
    pub fn new(app: Box<dyn GuiApp>, schedule: ChaosSchedule) -> Self {
        Self::with_theme(app, schedule, Theme::default())
    }

    /// Wrap `app` with an explicit theme (drift studies under chaos).
    pub fn with_theme(app: Box<dyn GuiApp>, schedule: ChaosSchedule, theme: Theme) -> Self {
        let ctl = Rc::new(RefCell::new(Ctl::default()));
        let wrapped = ChaosApp {
            inner: app,
            ctl: Rc::clone(&ctl),
        };
        Self {
            session: Session::with_theme(Box::new(wrapped), theme),
            ctl,
            schedule,
            prev_frame: None,
            stale_next: false,
            drop_next: false,
            dup_next: false,
            pending_shift: 0,
            notes: Vec::new(),
            faults_injected: 0,
        }
    }

    /// The wrapped session (success predicates evaluate against it; its
    /// `app().probe(..)` forwards through the chaos wrapper).
    pub fn inner(&self) -> &Session {
        &self.session
    }

    /// The schedule driving this surface.
    pub fn schedule(&self) -> &ChaosSchedule {
        &self.schedule
    }

    /// Total faults armed so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Whether the session is currently expired to the login interstitial.
    pub fn expired(&self) -> bool {
        self.ctl.borrow().expired
    }

    /// Whether an injected chaos modal is currently open.
    pub fn modal_open(&self) -> bool {
        self.ctl.borrow().modal.is_some()
    }
}

impl GuiSurface for ChaosSession {
    fn begin_step(&mut self, step: u64) {
        // One-shot channel faults not consumed by the previous step are
        // disarmed: each step sees at most its own scheduled fault.
        self.stale_next = false;
        self.drop_next = false;
        self.dup_next = false;
        self.pending_shift = 0;
        let Some(spec) = self.schedule.fault_at(step) else {
            return;
        };
        match spec.kind {
            FaultKind::PromoModal | FaultKind::ConfirmModal => {
                let mut ctl = self.ctl.borrow_mut();
                ctl.modal = Some(spec.kind);
                ctl.dirty = true;
            }
            FaultKind::SessionExpiry => {
                let mut ctl = self.ctl.borrow_mut();
                ctl.expired = true;
                ctl.dirty = true;
            }
            FaultKind::LayoutShift => {
                // The shift displaces what the agent is about to do
                // relative to what it last saw: nothing the cache holds
                // describes the frame the next observation must show, so
                // dirty it rather than trust the keying.
                self.session.invalidate_frames();
                self.pending_shift = spec.shift_px;
            }
            FaultKind::StaleFrame => {
                self.session.invalidate_frames();
                self.stale_next = true;
            }
            FaultKind::DropEvent => self.drop_next = true,
            FaultKind::DuplicateEvent => self.dup_next = true,
        }
        if self.ctl.borrow().dirty {
            // Let the page fault take effect before the step observes.
            self.session.tick();
        }
        self.notes.push(FaultNote {
            step,
            fault: spec.kind.name().to_string(),
        });
        self.faults_injected += 1;
    }

    fn screenshot(&mut self) -> Arc<Screenshot> {
        if self.stale_next {
            self.stale_next = false;
            if let Some(frame) = &self.prev_frame {
                return Arc::clone(frame);
            }
            // Nothing dispatched yet: the "previous" frame is the current
            // one, so fall through.
        }
        self.session.screenshot()
    }

    fn set_cache_enabled(&mut self, on: bool) {
        self.session.set_cache_enabled(on);
    }

    fn dispatch(&mut self, event: UserEvent) -> Dispatch {
        // Remember the pre-dispatch frame so a later stale-frame fault can
        // serve a capture that lags the true page by one dispatch.
        self.prev_frame = Some(self.session.screenshot());
        if self.drop_next {
            self.drop_next = false;
            // Swallowed before it reaches the session: nothing happens.
            return Dispatch {
                event,
                hit: None,
                effect: EffectKind::NoOp,
                url_after: self.session.url(),
            };
        }
        if self.dup_next {
            self.dup_next = false;
            let first = self.session.dispatch(event.clone());
            // Second delivery is silent — its effect never reaches the
            // agent, exactly like a bouncing switch.
            let _ = self.session.dispatch(event);
            return first;
        }
        let event = match event {
            UserEvent::Click(p) if self.pending_shift != 0 => {
                let shift = std::mem::take(&mut self.pending_shift);
                UserEvent::Click(p.offset(0, shift))
            }
            other => other,
        };
        self.session.dispatch(event)
    }

    fn page(&self) -> &Page {
        self.session.page()
    }

    fn scroll_y(&self) -> i32 {
        self.session.scroll_y()
    }

    fn url(&self) -> String {
        self.session.url()
    }

    fn drain_fault_notes(&mut self) -> Vec<FaultNote> {
        std::mem::take(&mut self.notes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosProfile;
    use eclair_gui::VisualClass;

    /// A deterministic little app: a counter with an increment button and
    /// a note field, probe-able for oracle checks.
    struct Counter {
        n: u32,
    }

    impl GuiApp for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn url(&self) -> String {
            "/counter".into()
        }
        fn build(&self) -> Page {
            let mut b = PageBuilder::new("Counter", "/counter");
            b.heading(1, "Counter");
            b.text(format!("count: {}", self.n));
            b.text_input("note", "Note", "type here");
            b.button("inc", "Increment");
            b.finish()
        }
        fn on_event(&mut self, ev: SemanticEvent) -> bool {
            if matches!(&ev, SemanticEvent::Activated { name, .. } if name == "inc") {
                self.n += 1;
                return true;
            }
            false
        }
        fn probe(&self, key: &str) -> Option<String> {
            (key == "count").then(|| self.n.to_string())
        }
    }

    fn chaos(kind: FaultKind) -> ChaosSession {
        let sched = ChaosSchedule::new(ChaosProfile::only(42, 1.0, kind), 0);
        ChaosSession::new(Box::new(Counter { n: 0 }), sched)
    }

    fn click_by_label(s: &mut ChaosSession, label: &str) -> Dispatch {
        let shot = s.screenshot();
        let item = shot
            .items
            .iter()
            .find(|i| i.text == label)
            .unwrap_or_else(|| panic!("no item labelled {label:?}"))
            .clone();
        s.dispatch(UserEvent::Click(item.rect.center()))
    }

    #[test]
    fn no_fault_without_a_schedule_hit() {
        let sched = ChaosSchedule::new(ChaosProfile::full(42, 0.0), 0);
        let mut s = ChaosSession::new(Box::new(Counter { n: 0 }), sched);
        s.begin_step(1);
        assert!(s.drain_fault_notes().is_empty());
        assert_eq!(s.faults_injected(), 0);
        assert_eq!(
            click_by_label(&mut s, "Increment").effect,
            EffectKind::Activated
        );
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("1"));
    }

    #[test]
    fn promo_modal_blocks_input_until_dismissed() {
        let mut s = chaos(FaultKind::PromoModal);
        s.begin_step(1);
        assert!(s.modal_open());
        let notes = s.drain_fault_notes();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].fault, "promo-modal");
        // The dialog captures the click aimed at the button underneath.
        let blocked = click_by_label(&mut s, "Increment");
        assert_ne!(blocked.effect, EffectKind::Activated);
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("0"));
        // Escape dismisses it; the app sees the Dismissed event.
        let esc = s.dispatch(UserEvent::Press(eclair_gui::Key::Escape));
        assert_eq!(esc.effect, EffectKind::Dismissed);
        assert!(!s.modal_open());
        assert_eq!(
            click_by_label(&mut s, "Increment").effect,
            EffectKind::Activated
        );
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("1"));
    }

    #[test]
    fn confirm_modal_dismisses_via_its_button() {
        let mut s = chaos(FaultKind::ConfirmModal);
        s.begin_step(1);
        assert!(s.modal_open());
        let d = click_by_label(&mut s, "Stay signed in");
        assert_eq!(d.effect, EffectKind::Activated);
        assert!(!s.modal_open());
    }

    #[test]
    fn session_expiry_redirects_until_relogin() {
        let mut s = chaos(FaultKind::SessionExpiry);
        s.begin_step(1);
        assert!(s.expired());
        assert_eq!(GuiSurface::url(&s), "/login");
        let shot = s.screenshot();
        assert!(shot.items.iter().any(|i| i.text == "Session expired"));
        // Probes still reach the real app while expired.
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("0"));
        let d = click_by_label(&mut s, "Log in");
        assert_eq!(d.effect, EffectKind::Activated);
        assert!(!s.expired());
        assert_eq!(GuiSurface::url(&s), "/counter");
        assert_eq!(
            click_by_label(&mut s, "Increment").effect,
            EffectKind::Activated
        );
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("1"));
    }

    #[test]
    fn stale_frame_serves_the_pre_dispatch_capture() {
        let mut s = chaos(FaultKind::StaleFrame);
        assert_eq!(
            click_by_label(&mut s, "Increment").effect,
            EffectKind::Activated
        );
        s.begin_step(1);
        let stale = s.screenshot();
        assert!(
            stale.items.iter().any(|i| i.text == "count: 0"),
            "stale frame must lag the increment"
        );
        let fresh = s.screenshot();
        assert!(fresh.items.iter().any(|i| i.text == "count: 1"));
    }

    #[test]
    fn drop_event_swallows_the_next_dispatch() {
        let mut s = chaos(FaultKind::DropEvent);
        s.begin_step(1);
        let d = click_by_label(&mut s, "Increment");
        assert_eq!(d.effect, EffectKind::NoOp);
        assert!(d.hit.is_none());
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("0"));
        // One-shot: the next event goes through.
        assert_eq!(
            click_by_label(&mut s, "Increment").effect,
            EffectKind::Activated
        );
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("1"));
    }

    #[test]
    fn duplicate_event_delivers_twice() {
        let mut s = chaos(FaultKind::DuplicateEvent);
        s.begin_step(1);
        let d = click_by_label(&mut s, "Increment");
        // The agent sees one activation; the app saw two.
        assert_eq!(d.effect, EffectKind::Activated);
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("2"));
    }

    #[test]
    fn duplicate_typing_doubles_text() {
        let mut s = chaos(FaultKind::DuplicateEvent);
        // Focus the note field first (no fault armed yet).
        let shot = s.screenshot();
        let field = shot
            .items
            .iter()
            .find(|i| i.visual == VisualClass::InputBox)
            .unwrap()
            .clone();
        s.dispatch(UserEvent::Click(field.rect.center()));
        s.begin_step(1);
        s.dispatch(UserEvent::Type("ab".into()));
        let page = s.page();
        let id = page.find_by_name("note").unwrap();
        assert_eq!(page.get(id).value, "abab");
    }

    #[test]
    fn layout_shift_translates_the_next_click() {
        let mut s = chaos(FaultKind::LayoutShift);
        let shift = s.schedule().fault_at(1).unwrap().shift_px;
        assert!(shift > 0);
        let shot = s.screenshot();
        let btn = shot
            .items
            .iter()
            .find(|i| i.text == "Increment")
            .unwrap()
            .clone();
        s.begin_step(1);
        // A click grounded on the pre-shift frame lands off-target...
        let miss = s.dispatch(UserEvent::Click(btn.rect.center()));
        assert_ne!(miss.effect, EffectKind::Activated);
        // ...and the shift is consumed: aiming normally works again.
        let hit = s.dispatch(UserEvent::Click(btn.rect.center()));
        assert_eq!(hit.effect, EffectKind::Activated);
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("1"));
    }

    #[test]
    fn shifted_page_never_serves_a_pre_shift_cached_frame() {
        // Regression: the frame cache must not survive a layout-shift
        // fault. Pre-fix risk: the pre-shift frame stays cached, the
        // displaced click mutates the page, and the next observation is
        // served from the stale cache entry.
        let mut s = chaos(FaultKind::LayoutShift);
        let pre = s.screenshot(); // cached at (scroll 0, no caret)
        let shift = s.schedule().fault_at(1).unwrap().shift_px;
        assert!(shift > 0);
        let inc = pre.items.iter().find(|i| i.text == "Increment").unwrap();
        // Aim at the point the *shifted* click will carry into the button:
        // the displaced click activates it and the page re-renders.
        let aim = inc.rect.center().offset(0, -shift);
        s.begin_step(1);
        let d = s.dispatch(UserEvent::Click(aim));
        assert_eq!(d.effect, EffectKind::Activated, "shifted click must land");
        let post = s.screenshot();
        assert!(
            post.items.iter().any(|i| i.text == "count: 1"),
            "post-shift observation must show the mutated page, not the cached pre-shift frame"
        );
        assert!(!Arc::ptr_eq(&pre, &post));
    }

    #[test]
    fn stale_frame_fault_dirties_the_frame_cache() {
        eclair_trace::perf::reset();
        let mut s = chaos(FaultKind::StaleFrame);
        let _ = s.screenshot(); // populate the cache
        let before = eclair_trace::perf::snapshot().frame_cache_invalidations;
        s.begin_step(1);
        assert_eq!(
            eclair_trace::perf::snapshot().frame_cache_invalidations,
            before + 1,
            "arming a stale-frame fault must invalidate cached frames"
        );
    }

    #[test]
    fn unconsumed_one_shots_clear_at_the_next_step() {
        let profile = ChaosProfile::only(11, 0.5, FaultKind::DropEvent);
        let sched = ChaosSchedule::new(profile, 0);
        let armed = (1..200).find(|&s| sched.fault_at(s).is_some()).unwrap();
        let clear = (armed + 1..200)
            .find(|&s| sched.fault_at(s).is_none())
            .unwrap();
        let mut s = ChaosSession::new(Box::new(Counter { n: 0 }), sched);
        s.begin_step(armed);
        s.begin_step(clear);
        // The drop armed at `armed` must not leak into this step.
        assert_eq!(
            click_by_label(&mut s, "Increment").effect,
            EffectKind::Activated
        );
        assert_eq!(s.inner().app().probe("count").as_deref(), Some("1"));
    }
}

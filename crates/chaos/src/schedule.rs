//! Deterministic fault scheduling.
//!
//! The chaos layer's determinism contract mirrors the fleet's: *every
//! fault is a pure function of `(chaos_seed, run_id, step)`*. No
//! wall-clock, no global RNG — the schedule for a run can be enumerated
//! before the run starts, and two executions of the same seeded suite
//! inject byte-identical fault sequences regardless of worker count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::fault::{FaultKind, FaultSpec};

/// SplitMix64-style finalizer mixing a parent seed and a stream index
/// (same construction as `eclair_fleet::derive_seed`, duplicated here so
/// the chaos crate stays a leaf dependency of `eclair-gui` only).
fn mix(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounds of the layout-shift displacement draw, in pixels.
pub const SHIFT_PX_RANGE: (i32, i32) = (24, 96);

/// The fault-injection configuration a fleet attaches to a run: the
/// chaos seed, the per-step injection probability, and the fault mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Seed all per-step draws derive from (independent of the fleet
    /// seed, so the fault environment and the model noise can be varied
    /// separately).
    pub chaos_seed: u64,
    /// Probability that any given executor step gets a fault, in [0, 1].
    pub fault_rate: f64,
    /// The kinds eligible for injection (drawn uniformly).
    pub kinds: Vec<FaultKind>,
}

impl ChaosProfile {
    /// The full fault mix at `fault_rate`.
    pub fn full(chaos_seed: u64, fault_rate: f64) -> Self {
        Self {
            chaos_seed,
            fault_rate,
            kinds: FaultKind::ALL.to_vec(),
        }
    }

    /// A single-kind profile (targeted regression harnesses).
    pub fn only(chaos_seed: u64, fault_rate: f64, kind: FaultKind) -> Self {
        Self {
            chaos_seed,
            fault_rate,
            kinds: vec![kind],
        }
    }
}

/// A run's fault schedule: the profile bound to one `run_id`. Stateless —
/// [`ChaosSchedule::fault_at`] is a pure function, so the schedule can be
/// queried out of order, re-queried, or enumerated for audit dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    profile: ChaosProfile,
    run_id: u64,
}

impl ChaosSchedule {
    /// Bind a profile to a run.
    pub fn new(profile: ChaosProfile, run_id: u64) -> Self {
        Self { profile, run_id }
    }

    /// The profile this schedule draws from.
    pub fn profile(&self) -> &ChaosProfile {
        &self.profile
    }

    /// The fault (if any) scheduled at 1-based executor step `step` —
    /// a pure function of `(chaos_seed, run_id, step)`.
    pub fn fault_at(&self, step: u64) -> Option<FaultSpec> {
        if self.profile.kinds.is_empty() || self.profile.fault_rate <= 0.0 {
            return None;
        }
        let seed = mix(mix(self.profile.chaos_seed, self.run_id), step);
        let mut rng = StdRng::seed_from_u64(seed);
        if !rng.gen_bool(self.profile.fault_rate.clamp(0.0, 1.0)) {
            return None;
        }
        let kind = self.profile.kinds[rng.gen_range(0..self.profile.kinds.len())];
        let shift_px = if kind == FaultKind::LayoutShift {
            rng.gen_range(SHIFT_PX_RANGE.0..=SHIFT_PX_RANGE.1)
        } else {
            0
        };
        Some(FaultSpec {
            step,
            kind,
            shift_px,
        })
    }

    /// Enumerate the schedule for steps `1..=max_steps` (audit dumps and
    /// determinism artifacts).
    pub fn enumerate(&self, max_steps: u64) -> Vec<FaultSpec> {
        (1..=max_steps).filter_map(|s| self.fault_at(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fault_at_is_pure() {
        let sched = ChaosSchedule::new(ChaosProfile::full(7, 0.5), 3);
        for step in 1..=40 {
            assert_eq!(sched.fault_at(step), sched.fault_at(step));
        }
        assert_eq!(sched.enumerate(40), sched.enumerate(40));
    }

    #[test]
    fn zero_rate_injects_nothing_and_full_rate_everything() {
        let none = ChaosSchedule::new(ChaosProfile::full(7, 0.0), 0);
        assert!(none.enumerate(50).is_empty());
        let all = ChaosSchedule::new(ChaosProfile::full(7, 1.0), 0);
        assert_eq!(all.enumerate(50).len(), 50);
    }

    #[test]
    fn seeds_and_run_ids_separate_schedules() {
        let a = ChaosSchedule::new(ChaosProfile::full(1, 0.5), 0).enumerate(64);
        let b = ChaosSchedule::new(ChaosProfile::full(2, 0.5), 0).enumerate(64);
        let c = ChaosSchedule::new(ChaosProfile::full(1, 0.5), 1).enumerate(64);
        assert_ne!(a, b, "chaos seed must matter");
        assert_ne!(a, c, "run id must matter");
    }

    #[test]
    fn single_kind_profile_only_draws_that_kind() {
        let sched = ChaosSchedule::new(ChaosProfile::only(9, 1.0, FaultKind::StaleFrame), 0);
        for f in sched.enumerate(30) {
            assert_eq!(f.kind, FaultKind::StaleFrame);
            assert_eq!(f.shift_px, 0);
        }
    }

    proptest! {
        #[test]
        fn rate_bounds_the_injection_frequency(seed in 0u64..1000, rate in 0.05f64..0.95) {
            let sched = ChaosSchedule::new(ChaosProfile::full(seed, rate), 0);
            let n = sched.enumerate(400).len() as f64 / 400.0;
            // Loose CLT band: observed frequency within ±0.15 of the rate.
            prop_assert!((n - rate).abs() < 0.15, "rate {rate}, observed {n}");
        }

        #[test]
        fn fault_at_is_query_order_independent(
            seed in 0u64..u64::MAX,
            run_id in 0u64..64,
            rate in 0.0f64..1.0,
        ) {
            // The schedule is stateless: querying steps forwards,
            // backwards, repeatedly, or interleaved must yield the same
            // fault for the same (chaos_seed, run_id, step) triple.
            let sched = ChaosSchedule::new(ChaosProfile::full(seed, rate), run_id);
            let forward: Vec<_> = (1..=40u64).map(|s| sched.fault_at(s)).collect();
            let mut backward: Vec<_> = (1..=40u64).rev().map(|s| sched.fault_at(s)).collect();
            backward.reverse();
            prop_assert_eq!(&forward, &backward);
            for &s in &[7u64, 3, 7, 40, 1, 3] {
                prop_assert_eq!(sched.fault_at(s), forward[(s - 1) as usize].clone());
            }
        }

        #[test]
        fn lower_rates_nest_inside_higher_rates(
            seed in 0u64..u64::MAX,
            run_id in 0u64..32,
            lo in 0.05f64..0.5,
            bump in 0.05f64..0.5,
        ) {
            // Metamorphic nesting: every fault scheduled at rate `lo` is
            // also scheduled — with an identical FaultSpec, displacement
            // included — at any higher rate, because the accept draw and
            // the kind/shift draws come from the same per-step stream.
            let hi = (lo + bump).min(1.0);
            let low = ChaosSchedule::new(ChaosProfile::full(seed, lo), run_id);
            let high = ChaosSchedule::new(ChaosProfile::full(seed, hi), run_id);
            for step in 1..=80u64 {
                if let Some(f) = low.fault_at(step) {
                    prop_assert_eq!(
                        high.fault_at(step),
                        Some(f),
                        "fault at rate {} must persist identically at rate {}",
                        lo,
                        hi
                    );
                }
            }
        }

        #[test]
        fn shift_px_is_set_iff_layout_shift(seed in 0u64..500) {
            let sched = ChaosSchedule::new(ChaosProfile::full(seed, 0.8), 1);
            for f in sched.enumerate(60) {
                if f.kind == FaultKind::LayoutShift {
                    prop_assert!(f.shift_px >= SHIFT_PX_RANGE.0 && f.shift_px <= SHIFT_PX_RANGE.1);
                } else {
                    prop_assert_eq!(f.shift_px, 0);
                }
            }
        }
    }
}

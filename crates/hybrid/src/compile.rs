//! The trace→script compiler: lower a validated FM execution trace into
//! a selector bot.
//!
//! Input is a task's gold action trace — the semantic record a validated
//! FM run leaves behind — which the compiler "replays" on a pristine
//! launch of the site exactly the way the RPA authoring studio would,
//! capturing for every anchored action the most drift-resistant selector
//! the recorded frame supports (`eclair_rpa::scoring`: name > label >
//! point). Two gates make the result *validated*, not merely recorded:
//! every action must replay cleanly, and the task's success predicate
//! must hold on the final screen (the gold outcome). A trace that fails
//! either gate does not become a bot — the hybrid run falls back to the
//! pure FM executor instead.
//!
//! Compilation is deterministic and token-free; its simulated cost is
//! charged to the virtual clock as [`CostKind::Compile`] draws, and each
//! lowered step is recorded as an [`EventKind::CompiledStep`] so the
//! flight record shows what the bot was born from.

use eclair_rpa::{best_selector, RpaOp, Selector};
use eclair_sites::TaskSpec;
use eclair_trace::{CostKind, EventKind, TraceRecorder};
use eclair_workflow::replay::KindPref;
use eclair_workflow::Action;

/// One compiled bot step: the anchor, the operation, and what the FM
/// fallback needs when the anchor drifts.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStep {
    /// The drift-resistant anchor chosen at compile time (or spliced in
    /// by the recompiler after a repair).
    pub selector: Selector,
    /// The operation to perform on the resolved element.
    pub op: RpaOp,
    /// The grounding query the FM fallback uses when this step drifts —
    /// the element's visible label as recorded, which is what perception
    /// sees on the live screen.
    pub query: String,
    /// Human-readable step description (notes, logs).
    pub describe: String,
}

/// A compiled hybrid script: an [`eclair_rpa::RpaScript`] enriched with
/// per-step fallback queries and a recompilation counter.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridScript {
    /// Task id the script automates.
    pub name: String,
    /// Steps in order.
    pub steps: Vec<CompiledStep>,
    /// How many steps the recompiler has spliced since compilation.
    pub recompiled: u64,
}

impl HybridScript {
    /// View as the plain RPA script (drops fallback metadata).
    pub fn to_rpa(&self) -> eclair_rpa::RpaScript {
        eclair_rpa::RpaScript {
            name: self.name.clone(),
            steps: self
                .steps
                .iter()
                .map(|s| eclair_rpa::RpaStep {
                    selector: s.selector.clone(),
                    op: s.op.clone(),
                })
                .collect(),
        }
    }
}

/// Compile `task`'s validated trace into a bot script. Replays the trace
/// on a pristine launch (the authoring recording), anchors each action
/// with [`best_selector`], and enforces the gold-outcome gate: the
/// replayed trace must complete and satisfy the task's success check.
/// Compile cost is charged to `recorder`'s virtual clock; each lowered
/// step emits a [`EventKind::CompiledStep`].
pub fn compile_task(task: &TaskSpec, recorder: &mut TraceRecorder) -> Result<HybridScript, String> {
    let mut session = task.launch();
    let mut steps: Vec<CompiledStep> = Vec::new();
    for action in &task.gold_trace.actions {
        let (target, op, pref) = match action {
            Action::Click(t) => (Some(t.clone()), RpaOp::Click, KindPref::Activatable),
            Action::Type {
                target: Some(t),
                text,
            } => (
                Some(t.clone()),
                RpaOp::Type(text.clone()),
                KindPref::Editable,
            ),
            Action::Type { target: None, text } => {
                (None, RpaOp::Type(text.clone()), KindPref::Editable)
            }
            Action::Replace { target, text } => (
                Some(target.clone()),
                RpaOp::Replace(text.clone()),
                KindPref::Editable,
            ),
            // Presses/scrolls need no anchor: replay advances the
            // recording, and the bot's scroll-into-view reproduces the
            // navigation they performed.
            Action::Press(_) | Action::Scroll(_) => (None, RpaOp::Click, KindPref::Any),
        };
        if let Some(target) = target {
            let Some(id) = eclair_workflow::replay::resolve_pref(&session, &target, pref) else {
                return Err(format!(
                    "{}: trace step {} ({}) does not resolve on the recorded screen",
                    task.id,
                    steps.len(),
                    action.describe()
                ));
            };
            let (selector, query) = {
                let page = session.page();
                let w = page.get(id);
                let label_or_name = if w.label.trim().is_empty() {
                    w.name.to_string()
                } else {
                    w.label.to_string()
                };
                let query = match op {
                    RpaOp::Click => label_or_name,
                    RpaOp::Type(_) | RpaOp::Replace(_) => format!("the {label_or_name} field"),
                };
                (best_selector(page, session.scroll_y(), id), query)
            };
            recorder.advance(CostKind::Compile, 0);
            recorder.event(EventKind::CompiledStep {
                step: steps.len() as u64,
                selector: selector.describe(),
            });
            steps.push(CompiledStep {
                selector,
                op,
                query,
                describe: action.describe(),
            });
        }
        if let Err(e) = eclair_workflow::replay::execute(&mut session, action) {
            return Err(format!(
                "{}: trace does not replay at {} ({e:?})",
                task.id,
                action.describe()
            ));
        }
    }
    // The gold-outcome gate: only a trace that demonstrably completed the
    // task is worth compiling into a bot.
    if !task.success.evaluate(&session) {
        return Err(format!(
            "{}: replayed trace does not satisfy the success check",
            task.id
        ));
    }
    Ok(HybridScript {
        name: task.id.clone(),
        steps,
        recompiled: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::tasks::all_tasks;

    #[test]
    fn every_gold_trace_compiles_through_the_validation_gate() {
        for task in all_tasks() {
            let mut rec = TraceRecorder::new();
            let script = compile_task(&task, &mut rec).expect(&task.id);
            assert!(!script.steps.is_empty(), "{}: empty script", task.id);
            assert_eq!(script.name, task.id);
            // Compile work is on the books: one event + one clock draw per
            // lowered step, zero FM tokens anywhere.
            let compiled = rec
                .events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::CompiledStep { .. }))
                .count();
            assert_eq!(compiled, script.steps.len());
            assert!(rec.clock().now_us() > 0);
        }
    }

    #[test]
    fn compiled_anchors_are_maximally_drift_resistant() {
        // The sites name their interactive widgets, so the compiler
        // should essentially never settle for a coordinate anchor.
        let mut by_kind = [0usize; 4];
        for task in all_tasks() {
            let mut rec = TraceRecorder::new();
            let script = compile_task(&task, &mut rec).unwrap();
            for s in &script.steps {
                by_kind[eclair_rpa::drift_resistance(&s.selector) as usize] += 1;
            }
        }
        let total: usize = by_kind.iter().sum();
        assert!(
            by_kind[3] * 10 >= total * 9,
            "expected >=90% name anchors, got {by_kind:?}"
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let task = &all_tasks()[5];
        let build = || {
            let mut rec = TraceRecorder::new();
            compile_task(task, &mut rec).unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn a_failing_trace_is_rejected() {
        let mut task = all_tasks().remove(0);
        // Truncate the trace: it replays but cannot reach the outcome.
        task.gold_trace.actions.truncate(1);
        let mut rec = TraceRecorder::new();
        let err = compile_task(&task, &mut rec).unwrap_err();
        assert!(err.contains("success check"), "{err}");
    }
}

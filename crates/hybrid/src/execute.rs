//! The hybrid executor: run a compiled bot at near-zero token cost,
//! detect UI drift at runtime, repair only the broken step with the FM,
//! and splice the repair back into the script.
//!
//! The step loop mirrors `eclair_core::execute::run_on_session`'s
//! bookkeeping exactly — same span structure, same chaos fault-note
//! accounting, same re-login recovery, same virtual-clock step anchoring
//! — so flight records and vt-latency profiles from hybrid runs compose
//! with everything downstream (obs, bench, crucible). The difference is
//! what a step costs: a bot step draws [`CostKind::BotStep`] and zero
//! tokens; only a drifted step pays for FM grounding, via
//! [`eclair_core::execute::repair_step`].
//!
//! Drift taxonomy (the chaos-hardened checks from the executor, applied
//! to bot steps):
//! * `selector-miss` — the recorded anchor resolves to nothing on the
//!   live page (relabel, rename, hidden element);
//! * `displaced-click` — the click landed somewhere other than where it
//!   was aimed (a layout shift in flight);
//! * `op-bounced` — the element resolved and the click landed, but the
//!   operation's effect did not materialize (typing into a button, a
//!   modal capturing input, a dropped event);
//! * `unexpected-page` — a modal or redirect means the resolved point no
//!   longer reaches the recorded element (detected as one of the above;
//!   the repair path escapes modals and re-logs-in).
//!
//! Transient drift (one-shot chaos faults consume on delivery) gets one
//! free deterministic retry before the FM is paid; a persistent miss
//! goes straight to fallback. Every successful repair is spliced back by
//! [`splice_repair`] so the same drift never costs tokens twice.

use eclair_core::execute::{
    click_at, relogin_if_expired, repair_step, ExecConfig, RepairedAnchor, RunResult,
};
use eclair_fm::FmModel;
use eclair_gui::event::EffectKind;
use eclair_gui::{GuiSurface, Key, UserEvent, VIEWPORT};
use eclair_rpa::{RpaOp, Selector};
use eclair_trace::{fault_cost_weight, render_log, CostKind, EventKind, SpanKind};

use crate::compile::{CompiledStep, HybridScript};

/// Outcome of one hybrid run: the executor-shaped result plus the
/// hybrid-specific drift ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridReport {
    /// Executor-compatible result (`success` is left `false`; callers
    /// check their own predicate, exactly as with `run_on_session`).
    pub result: RunResult,
    /// Steps where the bot detected drift.
    pub drifts: u64,
    /// FM fallbacks attempted (== drifts unless the run aborted early).
    pub fallbacks: u64,
    /// Fallbacks that succeeded and were spliced back into the script.
    pub repaired: u64,
}

impl HybridReport {
    /// Whether the bot got through the whole script (possibly with
    /// repairs). Task-level success is still the caller's predicate.
    pub fn completed(&self) -> bool {
        self.fallbacks == self.repaired && self.result.actions_attempted > 0
    }
}

/// Why a bot step did not land.
enum Drift {
    /// The anchor resolves to nothing — retrying without the FM is
    /// pointless.
    SelectorMiss,
    /// The step reached the page but bounced; one-shot faults consume on
    /// delivery, so one free deterministic retry is worth taking.
    Transient(String),
}

impl Drift {
    fn reason(&self) -> &str {
        match self {
            Drift::SelectorMiss => "selector-miss",
            Drift::Transient(r) => r,
        }
    }
}

/// Run a compiled script against a live surface, falling back to the FM
/// for broken steps only. Mutates `script` in place when the recompiler
/// splices a repaired anchor. Mirrors `run_on_session`'s accounting so
/// `HybridReport.result` composes with fleet/crucible bookkeeping:
/// `recoveries <= failures`, and `failures - recoveries` is the count of
/// steps that stayed broken (always 0 or 1 here — an unrepairable step
/// aborts the run).
pub fn run_hybrid_on_session<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    script: &mut HybridScript,
    cfg: &ExecConfig,
) -> HybridReport {
    let cache_on = cfg.use_cache && !eclair_gui::no_cache_env();
    session.set_cache_enabled(cache_on);
    model.set_cache_enabled(cache_on);
    let mut failures = 0usize;
    let mut recoveries = 0usize;
    let mut attempted = 0usize;
    let mut step_no = 0u64;
    let mut drifts = 0u64;
    let mut fallbacks = 0u64;
    let mut repaired = 0u64;
    let log_start = model.trace().events().len();
    let exec_span = model.trace_mut().open(SpanKind::Execute, &script.name);
    let total = script.steps.len();
    let mut i = 0usize;
    while i < total && attempted < cfg.max_steps {
        step_no += 1;
        let step_span = model
            .trace_mut()
            .open(SpanKind::Step, &format!("step {step_no}"));
        model.trace_mut().clock_begin_step(step_no);
        model.trace_mut().advance(CostKind::BotStep, 0);
        session.begin_step(step_no);
        for note in session.drain_fault_notes() {
            model
                .trace_mut()
                .advance(CostKind::FaultImpact, fault_cost_weight(&note.fault));
            model.trace_mut().note(format!(
                "chaos: {} injected at step {}",
                note.fault, note.step
            ));
            model.trace_mut().event(EventKind::FaultInjected {
                step: note.step,
                fault: note.fault,
            });
        }
        if cfg.relogin_expired && relogin_if_expired(session) {
            let rec_span = model.trace_mut().open(SpanKind::Recover, "re-login");
            model.trace_mut().advance(CostKind::Recover, 0);
            model
                .trace_mut()
                .note("re-authenticated after session expiry");
            model.trace_mut().close(rec_span);
        }
        attempted += 1;
        let step = script.steps[i].clone();
        let landed = match bot_dispatch(session, &step) {
            Ok(()) => Ok(()),
            // One-shot faults (layout-shift displacement, a dropped
            // event) consume on delivery: a single deterministic retry
            // is free and resolves them without waking the FM.
            Err(Drift::Transient(_)) => bot_dispatch(session, &step),
            Err(miss) => Err(miss),
        };
        match landed {
            Ok(()) => {
                model.trace_mut().note(format!("bot ok: {}", step.describe));
            }
            Err(drift) => {
                drifts += 1;
                failures += 1;
                let reason = drift.reason().to_string();
                model.trace_mut().event(EventKind::DriftDetected {
                    step: i as u64,
                    reason: reason.clone(),
                });
                model
                    .trace_mut()
                    .note(format!("drift at step {i}: {reason} ({})", step.describe));
                fallbacks += 1;
                let rec_span = model.trace_mut().open(SpanKind::Recover, "fm fallback");
                model.trace_mut().advance(CostKind::Recover, 0);
                model.trace_mut().event(EventKind::FallbackStep {
                    step: i as u64,
                    query: step.query.clone(),
                });
                let repair = repair_step(model, session, cfg, &step.query, &step.op);
                model.trace_mut().close(rec_span);
                match repair {
                    Ok(anchor) => {
                        recoveries += 1;
                        repaired += 1;
                        let selector = splice_repair(script, i, &anchor);
                        model.trace_mut().event(EventKind::Recompiled {
                            step: i as u64,
                            selector: selector.describe(),
                        });
                        model
                            .trace_mut()
                            .note(format!("recompiled step {i} -> {}", selector.describe()));
                    }
                    Err(e) => {
                        model
                            .trace_mut()
                            .note(format!("fallback failed at step {i}: {e}"));
                        model.trace_mut().close(step_span);
                        break;
                    }
                }
            }
        }
        model.trace_mut().close(step_span);
        i += 1;
    }
    model.trace_mut().close(exec_span);
    let log = render_log(&model.trace().events()[log_start..]);
    HybridReport {
        result: RunResult {
            success: false,
            actions_attempted: attempted,
            failures,
            recoveries,
            log,
        },
        drifts,
        fallbacks,
        repaired,
    }
}

/// The recompiler: splice the anchor an FM repair landed on back into
/// the script at `step`, choosing the most drift-resistant selector the
/// anchor supports (name > label > point) so the same drift never costs
/// tokens twice. Returns the spliced selector.
pub fn splice_repair(script: &mut HybridScript, step: usize, anchor: &RepairedAnchor) -> Selector {
    let selector = if !anchor.name.is_empty() {
        Selector::ByName(anchor.name.clone())
    } else if !anchor.label.is_empty() {
        Selector::ByLabel(anchor.label.clone())
    } else {
        Selector::ByPoint(anchor.point)
    };
    script.steps[step].selector = selector.clone();
    script.recompiled += 1;
    selector
}

/// One token-free bot attempt at a step, with the executor's
/// chaos-hardened checks: anchor resolution, landing-point verification,
/// and effect verification.
fn bot_dispatch<S: GuiSurface>(session: &mut S, step: &CompiledStep) -> Result<(), Drift> {
    let Some(id) = step.selector.resolve_in(session.page(), session.scroll_y()) else {
        return Err(Drift::SelectorMiss);
    };
    scroll_into_view_on(session, id);
    let pt = session
        .page()
        .get(id)
        .bounds
        .center()
        .offset(0, -session.scroll_y());
    let d = click_at(session, pt).map_err(|_| Drift::Transient("displaced-click".into()))?;
    let ok = match &step.op {
        RpaOp::Click => d.effect != EffectKind::NoOp,
        RpaOp::Type(text) => {
            d.effect == EffectKind::Focused
                && session.dispatch(UserEvent::Type(text.clone())).effect == EffectKind::Typed
        }
        RpaOp::Replace(text) => {
            if d.effect != EffectKind::Focused {
                false
            } else {
                for _ in 0..300 {
                    let empty = step
                        .selector
                        .resolve_in(session.page(), session.scroll_y())
                        .map(|id| session.page().get(id).value.is_empty())
                        .unwrap_or(true);
                    if empty {
                        break;
                    }
                    session.dispatch(UserEvent::Press(Key::Backspace));
                }
                session.dispatch(UserEvent::Type(text.clone())).effect == EffectKind::Typed
            }
        }
    };
    if ok {
        Ok(())
    } else {
        Err(Drift::Transient("op-bounced".into()))
    }
}

/// Generic scroll-into-view for any [`GuiSurface`]: same thresholds as
/// `Session::scroll_into_view`, expressed as a dispatched scroll event so
/// wrappers (chaos) see it and the surface clamps it.
fn scroll_into_view_on<S: GuiSurface>(session: &mut S, id: eclair_gui::WidgetId) {
    let b = session.page().get(id).bounds;
    let view_top = session.scroll_y();
    let view_h = VIEWPORT.h as i32;
    let desired = if b.y < view_top {
        (b.y - 20).max(0)
    } else if b.bottom() > view_top + view_h {
        b.bottom() - view_h + 20
    } else {
        view_top
    };
    if desired != view_top {
        session.dispatch(UserEvent::Scroll(desired - view_top));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_task;
    use eclair_fm::FmProfile;
    use eclair_gui::{DriftOp, Theme};
    use eclair_sites::tasks::all_tasks;
    use eclair_sites::TaskSpec;
    use eclair_trace::TraceRecorder;

    fn compile(task: &TaskSpec) -> HybridScript {
        let mut rec = TraceRecorder::new();
        compile_task(task, &mut rec).unwrap()
    }

    fn oracle() -> FmModel {
        FmProfile::Oracle.instantiate(11)
    }

    /// Downgrade the step anchored on the widget labeled `label` from its
    /// name selector to a label selector, so a relabel theme breaks it.
    /// (A click step's fallback query is the recorded label, which is how
    /// the step is found.)
    fn anchor_by_label(script: &mut HybridScript, label: &str) {
        let step = script
            .steps
            .iter_mut()
            .find(|s| s.query == label)
            .expect("script has a step on the labeled widget");
        step.selector = Selector::ByLabel(label.to_string());
    }

    #[test]
    fn pristine_pages_complete_every_task_at_zero_tokens() {
        for task in all_tasks() {
            let mut script = compile(&task);
            let mut session = task.launch();
            let mut model = oracle();
            let cfg = ExecConfig::with_sop(task.gold_sop.clone());
            let report = run_hybrid_on_session(&mut model, &mut session, &mut script, &cfg);
            assert!(
                task.success.evaluate(&session),
                "{}: hybrid run did not reach the gold outcome\n{}",
                task.id,
                report.result.log.join("\n")
            );
            assert_eq!(report.drifts, 0, "{}: drift on a pristine page", task.id);
            assert_eq!(
                model.meter().total_tokens(),
                0,
                "{}: a driftless bot run must cost zero tokens",
                task.id
            );
        }
    }

    #[test]
    fn relabel_drift_falls_back_then_recompiles() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut script = compile(&task);
        anchor_by_label(&mut script, "New issue");
        let theme = Theme::with_ops(vec![DriftOp::Relabel {
            from: "New issue".into(),
            to: "New issue »".into(),
        }]);
        let mut session = task.site.launch_with_theme(theme.clone());
        let mut model = oracle();
        let cfg = ExecConfig::with_sop(task.gold_sop.clone());
        let report = run_hybrid_on_session(&mut model, &mut session, &mut script, &cfg);
        assert!(
            task.success.evaluate(&session),
            "repaired run must still complete:\n{}",
            report.result.log.join("\n")
        );
        assert_eq!(report.drifts, 1);
        assert_eq!(report.repaired, 1);
        assert_eq!(script.recompiled, 1);
        assert!(model.meter().total_tokens() > 0, "the fallback pays tokens");
        // The same drift never costs tokens twice: a fresh run of the
        // *recompiled* script on the same drifted site is token-free.
        let mut session2 = task.site.launch_with_theme(theme);
        let mut model2 = oracle();
        let report2 = run_hybrid_on_session(&mut model2, &mut session2, &mut script, &cfg);
        assert!(task.success.evaluate(&session2));
        assert_eq!(report2.drifts, 0, "{}", report2.result.log.join("\n"));
        assert_eq!(model2.meter().total_tokens(), 0);
    }

    #[test]
    fn trace_carries_the_full_drift_narrative() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut script = compile(&task);
        anchor_by_label(&mut script, "New issue");
        let theme = Theme::with_ops(vec![DriftOp::Relabel {
            from: "New issue".into(),
            to: "New issue »".into(),
        }]);
        let mut session = task.site.launch_with_theme(theme);
        let mut model = oracle();
        let cfg = ExecConfig::with_sop(task.gold_sop.clone());
        let report = run_hybrid_on_session(&mut model, &mut session, &mut script, &cfg);
        assert_eq!(report.drifts, 1, "{}", report.result.log.join("\n"));
        let events = model.trace().events();
        let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(
            k,
            EventKind::DriftDetected { reason, .. } if reason == "selector-miss"
        )));
        assert!(has(&|k| matches!(k, EventKind::FallbackStep { .. })));
        assert!(has(&|k| matches!(k, EventKind::Recompiled { .. })));
        // Failure/recovery bookkeeping stays executor-shaped.
        assert!(report.result.recoveries <= report.result.failures);
        assert_eq!(report.result.failures, 1);
        assert_eq!(report.result.recoveries, 1);
    }

    #[test]
    fn unrepairable_scripts_abort_instead_of_flailing() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut script = compile(&task);
        // An op-level mismatch the FM cannot repair: type into a button.
        script.steps[0].op = RpaOp::Type("nonsense".into());
        let mut session = task.launch();
        let mut model = oracle();
        let cfg = ExecConfig::with_sop(task.gold_sop.clone());
        let report = run_hybrid_on_session(&mut model, &mut session, &mut script, &cfg);
        assert!(!task.success.evaluate(&session));
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.repaired, 0);
        assert!(!report.completed());
        assert!(report
            .result
            .log
            .iter()
            .any(|l| l.contains("fallback failed")));
    }
}

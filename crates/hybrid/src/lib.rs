//! # eclair-hybrid — compiled bots with FM-repaired drift
//!
//! The paper's economic argument (§6) is that a foundation-model agent
//! amortizes: once the FM has *demonstrated* a workflow, nothing about
//! re-running it requires intelligence — until the UI drifts. This crate
//! operationalizes that observation as a three-part loop:
//!
//! * [`compile`] — the **trace→script compiler**: lower a validated FM
//!   execution trace (gold actions + gold outcome) into a selector bot,
//!   choosing the most drift-resistant anchor per step (name > label >
//!   position) from the recorded frames;
//! * [`execute`] — the **hybrid executor**: replay the bot at near-zero
//!   token cost, detect drift at runtime (selector miss, landing-point
//!   verification failure, bounced effects, unexpected modals/redirects),
//!   and fall back to the FM executor for *only the broken step*;
//! * [`execute::splice_repair`] — the **recompiler**: splice each
//!   FM-repaired anchor back into the script, so the same drift never
//!   costs tokens twice;
//! * [`policy`] — the [`HybridPolicy`] knob `RunSpec` carries so the
//!   fleet, chaos schedules, virtual clock, and metrics registry all
//!   thread through unchanged.

pub mod compile;
pub mod execute;
pub mod policy;

pub use compile::{compile_task, CompiledStep, HybridScript};
pub use execute::{run_hybrid_on_session, splice_repair, HybridReport};
pub use policy::HybridPolicy;

//! Fleet-facing policy knob for hybrid execution.

use serde::{Deserialize, Serialize};

/// How a fleet run uses a compiled bot. Attached to a `RunSpec` via
/// `with_hybrid`; everything else — chaos schedules, the virtual clock,
/// token budgets, the metrics registry — threads through unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridPolicy {
    /// When the hybrid run still fails (a fallback step could not be
    /// repaired, or the outcome check does not hold), rescue the attempt
    /// with a full pure-FM run at the same attempt seed — byte-identical
    /// to what the fleet would have done without a bot. This is what
    /// makes hybrid execution *transparent*: it can only add successes,
    /// never remove them.
    pub full_fm_fallback: bool,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        Self {
            full_fm_fallback: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keeps_the_transparency_rescue_on() {
        assert!(HybridPolicy::default().full_fm_fallback);
    }

    #[test]
    fn round_trips_through_serde() {
        let p = HybridPolicy {
            full_fm_fallback: false,
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<HybridPolicy>(&json).unwrap(), p);
    }
}

//! Criterion bench behind Table 3: one grounding call per strategy/model.

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_core::execute::ground::{ground_click, GroundView, GroundingStrategy};
use eclair_core::experiments::grounding_corpus::{generate, Corpus};
use eclair_fm::{FmModel, ModelProfile};
use std::hint::black_box;

fn bench_grounding(c: &mut Criterion) {
    let sample = generate(Corpus::WebUiSim, 1, 5).remove(0);
    let shot = sample.page.screenshot_at(0);
    let plans: &[(&str, ModelProfile, GroundingStrategy)] = &[
        (
            "gpt4_native",
            ModelProfile::gpt4v(),
            GroundingStrategy::Native,
        ),
        (
            "gpt4_som_yolo",
            ModelProfile::gpt4v(),
            GroundingStrategy::SomYolo,
        ),
        (
            "gpt4_som_html",
            ModelProfile::gpt4v(),
            GroundingStrategy::SomHtml,
        ),
        (
            "cogagent_native",
            ModelProfile::cogagent_18b(),
            GroundingStrategy::Native,
        ),
    ];
    for (name, profile, strategy) in plans {
        c.bench_function(&format!("table3/{name}"), |b| {
            let mut model = FmModel::new(profile.clone(), 3);
            b.iter(|| {
                let view = GroundView {
                    shot: &shot,
                    page: Some(&sample.page),
                    scroll_y: 0,
                };
                black_box(ground_click(
                    &mut model,
                    *strategy,
                    &view,
                    &sample.description,
                ))
            })
        });
    }
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);

//! Criterion bench behind Table 2: one autonomous workflow run, with and
//! without SOP guidance.

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_core::execute::executor::{run_task, ExecConfig};
use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::all_tasks;
use std::hint::black_box;

fn bench_execution(c: &mut Criterion) {
    let task = all_tasks()
        .into_iter()
        .find(|t| t.id == "gitlab-03")
        .unwrap();
    c.bench_function("table2/run_with_sop", |b| {
        b.iter(|| {
            let mut model = FmModel::new(ModelProfile::gpt4v(), 11);
            let cfg = ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
            black_box(run_task(&mut model, &task, &cfg).success)
        })
    });
    c.bench_function("table2/run_without_sop", |b| {
        b.iter(|| {
            let mut model = FmModel::new(ModelProfile::gpt4v(), 11);
            let cfg = ExecConfig::without_sop().budgeted(task.gold_trace.len());
            black_box(run_task(&mut model, &task, &cfg).success)
        })
    });
    c.bench_function("table2/oracle_replay_gold", |b| {
        b.iter(|| {
            let mut session = task.launch();
            black_box(
                eclair_workflow::replay::execute_trace(&mut session, &task.gold_trace.actions)
                    .is_ok(),
            )
        })
    });
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);

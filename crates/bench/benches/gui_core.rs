//! Micro-benchmarks for the arena-backed GUI core: interning, slot
//! insert/remove/reuse, child-vector push, dirty-subtree relayout vs a
//! full walk, and the memoized frame hash — the primitives the
//! `perf_bench` macro numbers decompose into.

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_gui::{intern, PageBuilder, SlotArena, Widget, WidgetKind};
use std::hint::black_box;

fn busy_page() -> eclair_gui::Page {
    let mut b = PageBuilder::new("bench", "/bench");
    b.heading(1, "Benchmark page");
    for i in 0..12 {
        b.row(|b| {
            b.link(format!("l{i}"), format!("Item row {i}"));
            b.button(format!("b{i}"), format!("Action {i}"));
            b.icon_button(format!("i{i}"), format!("Icon {i}"));
        });
        b.text(format!("Row {i} body text for visual density"));
    }
    b.finish()
}

fn bench_gui_core(c: &mut Criterion) {
    c.bench_function("gui_core/intern_hit", |b| {
        intern("gui-core-bench-hot");
        b.iter(|| black_box(intern("gui-core-bench-hot")))
    });
    c.bench_function("gui_core/sym_compare", |b| {
        let a = intern("gui-core-compare-a");
        let z = intern("gui-core-compare-b");
        b.iter(|| black_box(a == z))
    });
    c.bench_function("gui_core/arena_insert_remove_reuse", |b| {
        let mut arena: SlotArena<Widget> = SlotArena::new();
        b.iter(|| {
            let id = arena.insert(Widget::new(WidgetKind::Button));
            arena.remove(id, Widget::new(WidgetKind::Root));
            black_box(arena.slot_count())
        })
    });
    c.bench_function("gui_core/page_build", |b| {
        b.iter(|| black_box(busy_page().content_height))
    });
    c.bench_function("gui_core/relayout_full", |b| {
        let mut p = busy_page();
        b.iter(|| {
            p.relayout();
            black_box(p.content_height)
        })
    });
    c.bench_function("gui_core/relayout_incremental_one_dirty", |b| {
        let mut p = busy_page();
        let id = p.find_by_name("b5").unwrap();
        let mut tick = 0u32;
        b.iter(|| {
            tick += 1;
            p.get_mut(id).label = format!("Action {}", tick % 7).into();
            p.relayout_incremental();
            black_box(p.content_height)
        })
    });
    c.bench_function("gui_core/frame_hash_memoized", |b| {
        let p = busy_page();
        let shot = p.screenshot_at(0);
        shot.frame_hash();
        b.iter(|| black_box(shot.frame_hash()))
    });
    c.bench_function("gui_core/frame_hash_cold", |b| {
        let p = busy_page();
        let shot = p.screenshot_at(0);
        b.iter(|| black_box(shot.clone().frame_hash()))
    });
}

criterion_group!(benches, bench_gui_core);
criterion_main!(benches);

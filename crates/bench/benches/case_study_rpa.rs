//! Criterion bench behind the Section 3 study: RPA script compile + run,
//! and one simulated deployment month.

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_rpa::drift::{DeploymentConfig, DeploymentSim};
use eclair_rpa::script::{compile, AuthoringConfig};
use eclair_rpa::RpaBot;
use eclair_sites::all_tasks;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_rpa(c: &mut Criterion) {
    let task = all_tasks().remove(0);
    c.bench_function("case_study/compile_script", |b| {
        b.iter(|| {
            let mut session = task.launch();
            let mut rng = StdRng::seed_from_u64(1);
            black_box(
                compile(
                    &task.id,
                    &mut session,
                    &task.gold_trace.actions,
                    AuthoringConfig::careful(),
                    &mut rng,
                )
                .steps
                .len(),
            )
        })
    });
    let script = {
        let mut session = task.launch();
        let mut rng = StdRng::seed_from_u64(1);
        compile(
            &task.id,
            &mut session,
            &task.gold_trace.actions,
            AuthoringConfig::careful(),
            &mut rng,
        )
    };
    c.bench_function("case_study/bot_run", |b| {
        b.iter(|| {
            let mut session = task.launch();
            black_box(RpaBot.run(&mut session, &script).completed())
        })
    });
    c.bench_function("case_study/deployment_month", |b| {
        let tasks: Vec<_> = all_tasks().into_iter().take(4).collect();
        b.iter(|| {
            let sim = DeploymentSim::new(
                tasks.clone(),
                DeploymentConfig {
                    months: 1,
                    ..Default::default()
                },
            );
            black_box(sim.run().months.len())
        })
    });
}

criterion_group!(benches, bench_rpa);
criterion_main!(benches);

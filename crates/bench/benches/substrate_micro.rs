//! Micro-benchmarks over the substrates: layout, rendering, diffing,
//! detection, perception, and a single grounding call — the per-step costs
//! every experiment above is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_core::execute::ground::{ground_click, GroundView, GroundingStrategy};
use eclair_fm::{FmModel, ModelProfile};
use eclair_gui::PageBuilder;
use eclair_sites::Site;
use eclair_vision::detector::YoloNasSim;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn busy_page() -> eclair_gui::Page {
    let mut b = PageBuilder::new("bench", "/bench");
    b.heading(1, "Benchmark page");
    for i in 0..12 {
        b.row(|b| {
            b.link(format!("l{i}"), format!("Item row {i}"));
            b.button(format!("b{i}"), format!("Action {i}"));
            b.icon_button(format!("i{i}"), format!("Icon {i}"));
        });
        b.text(format!("Row {i} body text for visual density"));
    }
    b.finish()
}

fn bench_substrates(c: &mut Criterion) {
    let page = busy_page();
    c.bench_function("gui/layout_relayout", |b| {
        let mut p = page.clone();
        b.iter(|| {
            p.relayout();
            black_box(p.content_height)
        })
    });
    c.bench_function("gui/screenshot_render", |b| {
        b.iter(|| black_box(page.screenshot_at(0)))
    });
    let shot = page.screenshot_at(0);
    let shot2 = page.screenshot_at(20);
    c.bench_function("vision/diff", |b| {
        b.iter(|| black_box(eclair_vision::diff::diff(&shot, &shot2)))
    });
    c.bench_function("vision/detector", |b| {
        let det = YoloNasSim::default();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(det.detect(&shot, &mut rng)))
    });
    c.bench_function("fm/perceive", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        b.iter(|| black_box(model.perceive(&shot)))
    });
    c.bench_function("core/ground_click_som_html", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 2);
        b.iter(|| {
            let view = GroundView {
                shot: &shot,
                page: Some(&page),
                scroll_y: 0,
            };
            black_box(ground_click(
                &mut model,
                GroundingStrategy::SomHtml,
                &view,
                "the 'Action 5' button",
            ))
        })
    });
    c.bench_function("sites/launch_gitlab", |b| {
        b.iter(|| black_box(Site::Gitlab.launch().url()))
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);

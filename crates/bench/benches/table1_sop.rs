//! Criterion bench behind Table 1: cost of generating one SOP under each
//! evidence level (WD prior recall vs key-frame vision vs log transcription).

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_core::demonstrate::{generate_sop, record_gold_demo, EvidenceLevel};
use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::all_tasks;
use std::hint::black_box;

fn bench_sop_generation(c: &mut Criterion) {
    let task = all_tasks().remove(0);
    let rec = record_gold_demo(&task);
    for level in EvidenceLevel::all() {
        c.bench_function(&format!("table1/generate_sop_{}", level.label()), |b| {
            let mut model = FmModel::new(ModelProfile::gpt4v(), 7);
            b.iter(|| black_box(generate_sop(&mut model, &task.intent, Some(&rec), level)))
        });
    }
    c.bench_function("table1/record_gold_demo", |b| {
        b.iter(|| black_box(record_gold_demo(&task).num_actions()))
    });
    c.bench_function("table1/score_sop", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 7);
        let sop = generate_sop(&mut model, &task.intent, Some(&rec), EvidenceLevel::WdKfAct);
        b.iter(|| black_box(eclair_workflow::score::score_sop(&sop, &task.gold_sop)))
    });
}

criterion_group!(benches, bench_sop_generation);
criterion_main!(benches);

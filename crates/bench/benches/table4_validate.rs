//! Criterion bench behind Table 4: one call of each validator.

use criterion::{criterion_group, criterion_main, Criterion};
use eclair_core::demonstrate::record_gold_demo;
use eclair_core::validate::{check_actuation, check_completion, check_integrity, check_trajectory};
use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::all_tasks;
use eclair_workflow::{Action, IntegrityConstraint, TargetRef};
use std::hint::black_box;

fn bench_validation(c: &mut Criterion) {
    let task = all_tasks().remove(2);
    let rec = record_gold_demo(&task);
    let (s, a, s2) = {
        let (x, y, z) = rec.transition(0).unwrap();
        (x.clone(), y.describe(), z.clone())
    };
    c.bench_function("table4/actuation", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        b.iter(|| black_box(check_actuation(&mut model, &s, &a, &s2).verdict))
    });
    c.bench_function("table4/integrity", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 2);
        let ic =
            IntegrityConstraint::for_action(&Action::Click(TargetRef::Label("Close issue".into())));
        b.iter(|| black_box(check_integrity(&mut model, &ic, &s).verdict))
    });
    c.bench_function("table4/completion", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 3);
        b.iter(|| black_box(check_completion(&mut model, &rec, &task.intent).verdict))
    });
    c.bench_function("table4/trajectory", |b| {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 4);
        b.iter(|| black_box(check_trajectory(&mut model, &rec, &task.gold_sop).verdict))
    });
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);

//! Regenerate the paper's Table 2 (Execute: suggestion & completion).

use eclair_bench::{emit_metrics, fast_mode, render_table2, render_trace_rollup, summary_snapshot};
use eclair_core::experiments::table2;

fn main() {
    eclair_trace::perf::reset();
    let cfg = table2::Table2Config {
        tasks: if fast_mode() { 8 } else { 30 },
        reps: if fast_mode() { 1 } else { 3 },
        ..Default::default()
    };
    let result = table2::run(cfg);
    println!(
        "Table 2: (Execute) GPT-4 average accuracy on next action suggestion\nwith and without SOP guidance ({} workflows, {} reps)\n",
        cfg.tasks, cfg.reps
    );
    println!("{}", render_table2(&result));
    println!();
    println!("{}", result.paper_comparison().render());
    println!("trace rollup:\n{}", render_trace_rollup(&result.trace));
    match result.shape_holds() {
        Ok(()) => {
            println!("shape check: PASS (SOPs roughly double completion; grounding gap persists)")
        }
        Err(e) => println!("shape check: FAIL — {e}"),
    }
    emit_metrics(&summary_snapshot(&result.trace));
}

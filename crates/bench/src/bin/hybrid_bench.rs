//! Hybrid bench: pure-FM execution vs the compiled-bot + FM-fallback
//! pipeline (`eclair-hybrid`) across the chaos ladder, plus a drift-epoch
//! study showing the recompiler amortizes fallback cost. Emits a
//! byte-reproducible `BENCH_hybrid.json`.
//!
//! Usage:
//!   hybrid_bench [--out BENCH_hybrid.json] [--determinism-out PATH]
//!                [--metrics-out PATH]
//!
//! Four gates, any violation exits 1:
//!
//! * `determinism`: the canonical hybrid point (top fault rate) re-run
//!   sequentially and on a 4-worker pool must serialize byte-identically
//!   (`--determinism-out` writes the dump the CI `hybrid-smoke` job
//!   diffs across invocations);
//! * `token_floor`: at fault rate 0 the hybrid pipeline must undercut
//!   pure-FM tokens/run by ≥10x (≥5x under `ECLAIR_FAST=1`) — on a
//!   drift-free page the compiled bot replays the validated trace
//!   without a single FM call;
//! * `completion_parity`: hybrid completion must match or beat pure-FM
//!   at every fault rate (the full-FM rescue re-runs a failing attempt
//!   at the same seed, so the twin can only gain);
//! * `recompile`: in every drift epoch the second back-to-back run must
//!   spend fewer fallback tokens than the first — the spliced repair
//!   means the same drift never costs tokens twice.
//!
//! `ECLAIR_FAST=1` shrinks the sweep for CI.

use eclair_bench::{emit_metrics, fast_mode, fleet_metrics};
use eclair_chaos::ChaosProfile;
use eclair_fleet::{derive_seed, Fleet, FleetConfig, RetryPolicy, RunSpec};
use eclair_fm::tokens::Pricing;
use eclair_fm::FmProfile;
use eclair_gui::{DriftOp, Theme};
use eclair_hybrid::{compile_task, run_hybrid_on_session, HybridPolicy};
use eclair_rpa::economics::CostModel;
use eclair_sites::all_tasks;
use eclair_trace::{EventKind, TraceEvent, TraceRecorder};
use serde::Serialize;

const FLEET_SEED: u64 = 2025;
const CHAOS_SEED: u64 = 777;
/// The profile both arms run under: the paper's flagship model, so the
/// token economics are the ones §6 argues about.
const PROFILE: FmProfile = FmProfile::Gpt4V;

/// One fault-rate point: the pure-FM arm and its hybrid twin.
#[derive(Debug, Serialize)]
struct HybridPoint {
    fault_rate: f64,
    runs: usize,
    pure_completion: f64,
    pure_tokens_total: u64,
    pure_tokens_per_run: f64,
    hybrid_completion: f64,
    hybrid_tokens_total: u64,
    hybrid_tokens_per_run: f64,
    /// Pure tokens per hybrid token (whole-sweep ratio; the crossover
    /// curve the artifact exists for).
    token_ratio: f64,
    /// Drift/fallback/recompile tallies from the hybrid arm's trace.
    compiled_steps: u64,
    drifts: u64,
    fallbacks: u64,
    recompiled: u64,
}

/// One epoch of the drift study: a new rename lands, the first run pays
/// FM fallbacks, the recompiled second run must not pay them again.
#[derive(Debug, Serialize)]
struct EpochRow {
    epoch: usize,
    drift: String,
    first_run_tokens: u64,
    second_run_tokens: u64,
    first_drifts: u64,
    second_drifts: u64,
    /// Cumulative splices the script has absorbed by the end of the epoch.
    recompiled_total: u64,
}

/// Measured deployment economics: the hybrid column of the §3 crossover
/// table, priced from this sweep's own token counts.
#[derive(Debug, Serialize)]
struct Economics {
    pricing: String,
    /// One validated FM run's tokens — the whole "integration project".
    compile_cost_usd: f64,
    /// Fallback spend per item at the top fault rate (the worst case the
    /// sweep measured; 0 on a drift-free page).
    fallback_cost_per_item_usd: f64,
    hybrid_break_even_vs_rpa_months: Option<usize>,
    hybrid_break_even_vs_pure_fm_months: Option<usize>,
}

/// The whole artifact. Wall-clock-free: byte-reproducible.
#[derive(Debug, Serialize)]
struct HybridBenchJson {
    suite_tasks: usize,
    reps: usize,
    fleet_seed: u64,
    chaos_seed: u64,
    profile: String,
    fault_rates: Vec<f64>,
    determinism: String,
    token_floor: String,
    completion_parity: String,
    recompile: String,
    points: Vec<HybridPoint>,
    epochs: Vec<EpochRow>,
    economics: Economics,
}

fn specs(rate: f64, tasks: usize, reps: usize, hybrid: bool) -> Vec<RunSpec> {
    let suite = all_tasks();
    let mut out = Vec::with_capacity(tasks * reps);
    for rep in 0..reps {
        for (i, task) in suite.iter().take(tasks).enumerate() {
            let run_id = (rep * tasks + i) as u64;
            let mut spec = RunSpec::for_task(FLEET_SEED, run_id, task.clone(), PROFILE);
            if rate > 0.0 {
                spec = spec.with_chaos(ChaosProfile::full(CHAOS_SEED, rate));
                // Same step-budget extension as chaos_bench: fault
                // handling consumes steps, and the curve should measure
                // robustness, not budget starvation.
                let base = spec.config.max_steps;
                spec.config.max_steps = base + (base as f64 * rate).ceil() as usize;
            }
            if hybrid {
                spec = spec.with_hybrid(HybridPolicy::default());
            }
            out.push(spec);
        }
    }
    out
}

fn fleet(workers: usize) -> Fleet {
    Fleet::new(FleetConfig {
        workers,
        queue_capacity: 2 * workers.max(1),
        // Single attempt, matching chaos_bench: the comparison is
        // in-run economics, not scheduler retries.
        retry: RetryPolicy::none(),
        fleet_seed: FLEET_SEED,
        use_shared: true,
    })
}

/// Tally the hybrid lifecycle events out of a merged trace.
fn hybrid_counts(trace: &[TraceEvent]) -> (u64, u64, u64, u64) {
    let (mut compiled, mut drifts, mut fallbacks, mut recompiled) = (0u64, 0u64, 0u64, 0u64);
    for e in trace {
        match &e.kind {
            EventKind::CompiledStep { .. } => compiled += 1,
            EventKind::DriftDetected { .. } => drifts += 1,
            EventKind::FallbackStep { .. } => fallbacks += 1,
            EventKind::Recompiled { .. } => recompiled += 1,
            _ => {}
        }
    }
    (compiled, drifts, fallbacks, recompiled)
}

/// FNV-1a digest (same construction as fleet_bench / chaos_bench).
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The drift-epoch study. One script compiled once — then downgraded to
/// *vision-grade* anchors on its click steps (`ByLabel` of what is on
/// the glass), the paper's DOM-free setting where a compiler has no
/// accessibility names to anchor on. Three epochs of accumulating label
/// drift follow, each breaking exactly one anchor in an FM-repairable
/// way (the new label keeps every query token). The first run of an
/// epoch pays an FM fallback; the splice upgrades the anchor to the
/// durable name the repair resolved, so the second back-to-back run must
/// not pay again. The gate: within every epoch, second-run tokens are
/// strictly below first-run tokens, and both runs still complete.
fn drift_epochs() -> (Vec<EpochRow>, Result<(), String>) {
    let task = all_tasks()
        .into_iter()
        .find(|t| t.id == "gitlab-01")
        .expect("suite carries gitlab-01");
    let mut recorder = TraceRecorder::new();
    let mut script = compile_task(&task, &mut recorder).expect("gold trace compiles");
    for step in &mut script.steps {
        if matches!(step.op, eclair_rpa::RpaOp::Click) {
            step.selector = eclair_rpa::Selector::ByLabel(step.query.clone());
        }
    }
    let relabels = [
        ("New issue", "New issue »"),
        ("Issues", "Issues »"),
        ("Create issue", "Create issue »"),
    ];
    let mut ops: Vec<DriftOp> = Vec::new();
    let mut rows = Vec::with_capacity(relabels.len());
    let mut gate = Ok(());
    let fail = |msg: String, gate: &mut Result<(), String>| {
        if gate.is_ok() {
            *gate = Err(msg);
        }
    };
    for (e, (from, to)) in relabels.iter().enumerate() {
        ops.push(DriftOp::Relabel {
            from: from.to_string(),
            to: to.to_string(),
        });
        let theme = Theme::with_ops(ops.clone());
        let cfg = eclair_core::execute::executor::ExecConfig::with_sop(task.gold_sop.clone())
            .budgeted(task.gold_trace.len());
        let mut run = |stream: u64| {
            let mut model = PROFILE.instantiate(derive_seed(FLEET_SEED, stream));
            let mut session = task.site.launch_with_theme(theme.clone());
            let report = run_hybrid_on_session(&mut model, &mut session, &mut script, &cfg);
            let ok = task.success.evaluate(&session);
            (report.drifts, model.meter().total_tokens(), ok)
        };
        let (first_drifts, first_tokens, ok1) = run(1_000 + e as u64);
        let (second_drifts, second_tokens, ok2) = run(2_000 + e as u64);
        if !ok1 || !ok2 {
            fail(
                format!("epoch {e}: task regressed (first ok={ok1}, second ok={ok2})"),
                &mut gate,
            );
        }
        if first_tokens == 0 {
            fail(
                format!("epoch {e}: relabel {from} -> {to} provoked no fallback"),
                &mut gate,
            );
        }
        if second_tokens >= first_tokens {
            fail(
                format!(
                    "epoch {e}: second run spent {second_tokens} tokens against {first_tokens} — the splice did not hold"
                ),
                &mut gate,
            );
        }
        rows.push(EpochRow {
            epoch: e + 1,
            drift: format!("relabel {from} -> {to}"),
            first_run_tokens: first_tokens,
            second_run_tokens: second_tokens,
            first_drifts,
            second_drifts,
            recompiled_total: script.recompiled,
        });
    }
    (rows, gate)
}

fn main() {
    eclair_trace::perf::reset();
    let (tasks, reps, rates): (usize, usize, Vec<f64>) = if fast_mode() {
        (8, 1, vec![0.0, 0.3])
    } else {
        (30, 3, vec![0.0, 0.1, 0.25, 0.5])
    };
    println!(
        "hybrid_bench: {} tasks x {} reps, rates {:?}, profile {}, seeds fleet={} chaos={}",
        tasks,
        reps,
        rates,
        PROFILE.name(),
        FLEET_SEED,
        CHAOS_SEED
    );

    // Determinism gate on the canonical hybrid point (top fault rate):
    // sequential vs 4-worker pool must serialize byte-identically.
    let top_rate = *rates.last().unwrap();
    let canon_seq = fleet(1)
        .run_sequential(specs(top_rate, tasks, reps, true))
        .expect("sequential canonical point");
    let canon_par = fleet(4)
        .run(specs(top_rate, tasks, reps, true))
        .expect("parallel canonical point");
    let determinism_ok = canon_seq.outcome.to_json() == canon_par.outcome.to_json()
        && canon_seq.merged_trace_jsonl().expect("merged trace")
            == canon_par.merged_trace_jsonl().expect("merged trace");
    println!(
        "determinism (hybrid @ {top_rate}): {}",
        if determinism_ok { "ok" } else { "MISMATCH" }
    );
    let mut metrics = fleet_metrics(&canon_seq.outcome, &canon_seq.merged_trace);
    let (compiled, drifts, fallbacks, recompiled) = hybrid_counts(&canon_seq.merged_trace);
    metrics.inc("hybrid.compiled_steps", compiled);
    metrics.inc("hybrid.drifts_detected", drifts);
    metrics.inc("hybrid.fm_fallbacks", fallbacks);
    metrics.inc("hybrid.recompiled_steps", recompiled);
    metrics.absorb_perf(&eclair_trace::perf::snapshot());

    let mut points = Vec::with_capacity(rates.len());
    for &rate in &rates {
        let pure = fleet(4)
            .run(specs(rate, tasks, reps, false))
            .expect("pure sweep point");
        let hybrid = fleet(4)
            .run(specs(rate, tasks, reps, true))
            .expect("hybrid sweep point");
        let runs = pure.outcome.records.len();
        let pure_total = pure.outcome.tokens.total_tokens();
        let hybrid_total = hybrid.outcome.tokens.total_tokens();
        let (compiled, drifts, fallbacks, recompiled) = hybrid_counts(&hybrid.merged_trace);
        let pt = HybridPoint {
            fault_rate: rate,
            runs,
            pure_completion: pure.outcome.completion_rate(),
            pure_tokens_total: pure_total,
            pure_tokens_per_run: pure_total as f64 / runs.max(1) as f64,
            hybrid_completion: hybrid.outcome.completion_rate(),
            hybrid_tokens_total: hybrid_total,
            hybrid_tokens_per_run: hybrid_total as f64 / runs.max(1) as f64,
            token_ratio: pure_total as f64 / hybrid_total.max(1) as f64,
            compiled_steps: compiled,
            drifts,
            fallbacks,
            recompiled,
        };
        println!(
            "rate {:.2}: pure {:.0} tok/run ({:.2} done) vs hybrid {:.0} tok/run ({:.2} done) — {:.0}x cheaper, {} drifts / {} fallbacks / {} recompiled",
            rate,
            pt.pure_tokens_per_run,
            pt.pure_completion,
            pt.hybrid_tokens_per_run,
            pt.hybrid_completion,
            pt.token_ratio,
            pt.drifts,
            pt.fallbacks,
            pt.recompiled,
        );
        points.push(pt);
    }

    // Token floor at rate 0: on drift-free pages the compiled bot must
    // make the FM essentially free.
    let floor = if fast_mode() { 5.0 } else { 10.0 };
    let base = &points[0];
    let token_floor = if base.token_ratio >= floor {
        format!("ok ({:.0}x >= {floor:.0}x at rate 0)", base.token_ratio)
    } else {
        format!("VIOLATED: {:.1}x < {floor:.0}x at rate 0", base.token_ratio)
    };

    // Completion parity at every rate: the rescue makes hybrid strictly
    // no worse than pure.
    let completion_parity = match points
        .iter()
        .find(|p| p.hybrid_completion + 1e-9 < p.pure_completion)
    {
        None => "ok".to_string(),
        Some(p) => format!(
            "VIOLATED: hybrid {:.2} < pure {:.2} at rate {}",
            p.hybrid_completion, p.pure_completion, p.fault_rate
        ),
    };

    let (epochs, recompile_gate) = drift_epochs();
    for r in &epochs {
        println!(
            "epoch {} ({}): first run {} tok / {} drifts, second run {} tok / {} drifts, {} splices total",
            r.epoch,
            r.drift,
            r.first_run_tokens,
            r.first_drifts,
            r.second_run_tokens,
            r.second_drifts,
            r.recompiled_total,
        );
    }

    // Price the hybrid column of the §3 crossover table from this sweep's
    // own measurements: compiling costs one validated pure-FM run; each
    // item costs only the fallbacks the top fault rate provoked.
    let pricing = Pricing::gpt4_turbo();
    let usd = |tokens_per_run: f64| {
        // The sweep doesn't split prompt/completion per arm; price at the
        // prompt rate, which dominates grounding calls.
        tokens_per_run * pricing.prompt_per_m / 1_000_000.0
    };
    let compile_cost_usd = usd(base.pure_tokens_per_run);
    let fallback_cost_per_item_usd = usd(points.last().unwrap().hybrid_tokens_per_run);
    let hybrid_model = CostModel::hybrid_compiled(compile_cost_usd, fallback_cost_per_item_usd);
    let rpa = CostModel::rpa_b2b_case_study();
    let pure_fm = CostModel::eclair_measured(usd(base.pure_tokens_per_run));
    let economics = Economics {
        pricing: "gpt-4-turbo list ($10/M prompt)".to_string(),
        compile_cost_usd,
        fallback_cost_per_item_usd,
        hybrid_break_even_vs_rpa_months: hybrid_model.break_even_vs(&rpa, 1000.0, 25.0, 36),
        hybrid_break_even_vs_pure_fm_months: hybrid_model.break_even_vs(&pure_fm, 1000.0, 25.0, 36),
    };
    println!(
        "economics: compile ${:.4}/workflow, fallback ${:.6}/item; breaks even vs RPA at month {:?}, vs pure FM at month {:?}",
        economics.compile_cost_usd,
        economics.fallback_cost_per_item_usd,
        economics.hybrid_break_even_vs_rpa_months,
        economics.hybrid_break_even_vs_pure_fm_months,
    );

    let artifact = HybridBenchJson {
        suite_tasks: tasks,
        reps,
        fleet_seed: FLEET_SEED,
        chaos_seed: CHAOS_SEED,
        profile: PROFILE.name().to_string(),
        fault_rates: rates.clone(),
        determinism: if determinism_ok { "ok" } else { "MISMATCH" }.to_string(),
        token_floor: token_floor.clone(),
        completion_parity: completion_parity.clone(),
        recompile: match &recompile_gate {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("VIOLATED: {e}"),
        },
        points,
        epochs,
        economics,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_hybrid.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");

    if let Some(path) = arg_value("--determinism-out") {
        let det = format!(
            "{}\ntrace_fnv1a={:016x}\n",
            canon_seq.outcome.to_json(),
            fnv1a(&canon_seq.merged_trace_jsonl().expect("merged trace"))
        );
        std::fs::write(&path, det).expect("write determinism artifact");
        println!("wrote {path}");
    }
    emit_metrics(&metrics);

    let mut failed = false;
    if !determinism_ok {
        eprintln!("FAIL: hybrid fleet diverged between sequential and concurrent execution");
        failed = true;
    }
    if token_floor.starts_with("VIOLATED") {
        eprintln!("FAIL: {token_floor}");
        failed = true;
    }
    if completion_parity.starts_with("VIOLATED") {
        eprintln!("FAIL: completion parity — {completion_parity}");
        failed = true;
    }
    if let Err(e) = &recompile_gate {
        eprintln!("FAIL: recompilation gate — {e}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

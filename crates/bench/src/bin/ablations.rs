//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * A1 — end-to-end completion by grounding strategy × model profile;
//! * A2 — detector quality (default vs oracle YOLO-sim): the paper's
//!   "detecting elements … is not the bottleneck" claim;
//! * A3 — multi-agent ensemble size vs completion (§5);
//! * A4 — self-consistency voting vs single-shot judgment on the
//!   actuation-validation dataset (§5's "repeatedly querying and
//!   ensembling predictions").

use eclair_bench::{
    automate_sweep, emit_metrics, fast_mode, render_trace_rollup, summary_snapshot, trace_out_arg,
};
use eclair_core::demonstrate::record_gold_demo;
use eclair_core::execute::executor::{run_task, ExecConfig};
use eclair_core::execute::GroundingStrategy;
use eclair_core::experiments::grounding_corpus::{generate, Corpus};
use eclair_core::multiagent::first_success;
use eclair_core::validate::check_actuation;
use eclair_fm::sampling::Sampling;
use eclair_fm::{FmModel, ModelProfile};
use eclair_metrics::table::fmt2;
use eclair_metrics::{BinaryConfusion, Table};
use eclair_sites::all_tasks;
use eclair_trace::RunSummary;
use eclair_vision::detector::YoloNasSim;

/// SoM grounding accuracy over `samples` with a given detector quality.
fn accuracy_with_detector(
    samples: &[eclair_core::experiments::grounding_corpus::GroundingSample],
    detector: &YoloNasSim,
    seed: u64,
    trace: &mut RunSummary,
) -> f64 {
    use eclair_core::execute::ground::associate_captions;
    use eclair_vision::marks::marks_via_detector;
    let mut hits = 0usize;
    for (i, s) in samples.iter().enumerate() {
        let mut model = FmModel::new(ModelProfile::gpt4v(), seed + i as u64);
        let shot = s.page.screenshot_at(0);
        let mut marked = marks_via_detector(&shot, detector, model.rng());
        associate_captions(&mut marked.marks, &shot);
        let out = model.ground_marks(&marked, &s.description);
        if out
            .click_point(&marked.marks)
            .map(|p| s.truth.contains(p))
            .unwrap_or(false)
        {
            hits += 1;
        }
        trace.merge(&model.trace().summary());
    }
    hits as f64 / samples.len().max(1) as f64
}

fn main() {
    eclair_trace::perf::reset();
    let n_tasks = if fast_mode() { 6 } else { 15 };
    let tasks: Vec<_> = all_tasks().into_iter().take(n_tasks).collect();
    let mut trace = RunSummary::default();

    // ----- A1: grounding strategy × profile → completion
    println!("A1: completion by grounding strategy x model ({n_tasks} tasks, 2 reps)\n");
    let mut t = Table::new(vec!["model", "strategy", "completion"]).numeric();
    for (pname, profile) in [
        ("GPT-4", ModelProfile::gpt4v()),
        ("CogAgent", ModelProfile::cogagent_18b()),
    ] {
        for strategy in [
            GroundingStrategy::Native,
            GroundingStrategy::SomYolo,
            GroundingStrategy::SomHtml,
        ] {
            let mut wins = 0usize;
            let mut total = 0usize;
            for rep in 0..2u64 {
                for (i, task) in tasks.iter().enumerate() {
                    let mut cfg =
                        ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
                    cfg.strategy = strategy;
                    let mut model = FmModel::new(profile.clone(), 3000 + rep * 500 + i as u64);
                    total += 1;
                    if run_task(&mut model, task, &cfg).success {
                        wins += 1;
                    }
                    trace.merge(&model.trace().summary());
                }
            }
            t.row(vec![
                pname.to_string(),
                strategy.label().to_string(),
                fmt2(wins as f64 / total as f64),
            ]);
        }
    }
    println!("{}\n", t.to_ascii());

    // ----- A2: detector quality ablation
    println!("A2: SoM grounding accuracy vs detector quality (WebUI-sim)\n");
    let pages = if fast_mode() { 40 } else { 120 };
    let samples = generate(Corpus::WebUiSim, pages, 99);
    let default_acc = accuracy_with_detector(&samples, &YoloNasSim::default(), 7, &mut trace);
    let oracle_acc = accuracy_with_detector(&samples, &YoloNasSim::oracle(), 7, &mut trace);
    println!("default detector: {:.2}", default_acc);
    println!("oracle detector:  {:.2}", oracle_acc);
    println!(
        "gap: {:.2} — detection is {} the bottleneck (paper: selection dominates)\n",
        oracle_acc - default_acc,
        if oracle_acc - default_acc < 0.15 {
            "not"
        } else {
            "partly"
        }
    );

    // ----- A3: ensemble size
    println!("A3: multi-agent ensemble size vs completion\n");
    let mut t = Table::new(vec!["agents", "completion"]).numeric();
    for n in [1usize, 2, 4] {
        let mut wins = 0;
        for (i, task) in tasks.iter().enumerate() {
            let cfg = ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
            if first_success(&ModelProfile::gpt4v(), task, &cfg, n, 7000 + i as u64).success {
                wins += 1;
            }
        }
        t.row(vec![n.to_string(), fmt2(wins as f64 / tasks.len() as f64)]);
    }
    println!("{}\n", t.to_ascii());

    // ----- A4: self-consistency on actuation validation
    println!("A4: actuation validation, single-shot vs 5-vote self-consistency\n");
    let mut t = Table::new(vec!["sampling", "precision", "recall", "F1"]).numeric();
    for (name, sampling) in [
        ("single", Sampling::greedy()),
        ("vote-5", Sampling::vote(5, 0.2)),
    ] {
        let mut cm = BinaryConfusion::default();
        let mut model = FmModel::new(ModelProfile::gpt4v(), 11);
        model.set_sampling(sampling);
        for task in tasks.iter().take(8) {
            let rec = record_gold_demo(task);
            for i in 0..rec.num_actions() {
                let Some((s, a, s2)) = rec.transition(i) else {
                    continue;
                };
                cm.observe(
                    check_actuation(&mut model, s, &a.describe(), s2).verdict,
                    true,
                );
                cm.observe(
                    check_actuation(&mut model, s, &a.describe(), s).verdict,
                    false,
                );
            }
        }
        trace.merge(&model.trace().summary());
        t.row(vec![
            name.to_string(),
            fmt2(cm.precision()),
            fmt2(cm.recall()),
            fmt2(cm.f1()),
        ]);
    }
    println!("{}", t.to_ascii());

    println!("\ntrace rollup (A1 + A2 + A4; A3's ensemble models are internal):");
    println!("{}", render_trace_rollup(&trace));
    if let Some(path) = trace_out_arg() {
        let sweep = automate_sweep(if fast_mode() { 3 } else { 10 }, 7);
        match std::fs::write(&path, &sweep.jsonl) {
            Ok(()) => println!(
                "flight record: {} events written to {}",
                sweep.summary.events,
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    emit_metrics(&summary_snapshot(&trace));
}

//! Chaos bench: sweep fault rate x model profile over the task suite and
//! emit completion/recovery-rate curves as `BENCH_chaos.json`.
//!
//! Usage:
//!   chaos_bench [--out BENCH_chaos.json] [--determinism-out PATH]
//!               [--metrics-out PATH]
//!
//! Each point runs the suite as a chaos fleet (single-attempt, so the
//! curve measures executor robustness rather than scheduler retries) and
//! records how often workflows still complete and how often in-run
//! recoveries land. Two invariants the artifact carries:
//!
//! * `determinism`: the canonical point re-run sequentially and on a
//!   4-worker pool must serialize byte-identically (`--determinism-out`
//!   writes the dump the CI `chaos-smoke` job diffs across invocations);
//! * `shape`: per profile, completion must be monotone non-increasing in
//!   the fault rate (with one rescued run of slack per point — faults can
//!   legitimately rescue a run), and the oracle must degrade least.
//!
//! `ECLAIR_FAST=1` shrinks the sweep for CI.

use eclair_bench::{emit_metrics, fast_mode, fleet_metrics};
use eclair_chaos::ChaosProfile;
use eclair_fleet::{Fleet, FleetConfig, FleetReport, RetryPolicy, RunSpec};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use serde::Serialize;

const FLEET_SEED: u64 = 2025;
const CHAOS_SEED: u64 = 777;

/// One (profile, fault-rate) point of the sweep.
#[derive(Debug, Serialize)]
struct ChaosPoint {
    profile: String,
    fault_rate: f64,
    runs: usize,
    completed: u64,
    completion_rate: f64,
    failures_total: u64,
    recoveries_total: u64,
    /// Recoveries per failure (how often the upgraded recovery path
    /// turns a failed step into a landed one).
    recovery_rate: f64,
    faults_injected_total: u64,
    mean_faults_per_run: f64,
    /// Of the runs this profile completes fault-free, the fraction still
    /// completed at this fault rate (run-matched: same task, same seed).
    /// This conditions out tasks the profile fails regardless of chaos,
    /// so it compares recovery ability rather than baseline skill.
    survival_of_baseline: f64,
}

/// The whole artifact.
#[derive(Debug, Serialize)]
struct ChaosBenchJson {
    suite_tasks: usize,
    reps: usize,
    fleet_seed: u64,
    chaos_seed: u64,
    fault_rates: Vec<f64>,
    profiles: Vec<String>,
    determinism: String,
    shape: String,
    points: Vec<ChaosPoint>,
}

fn specs(profile: FmProfile, rate: f64, tasks: usize, reps: usize) -> Vec<RunSpec> {
    let suite = all_tasks();
    let mut out = Vec::with_capacity(tasks * reps);
    for rep in 0..reps {
        for (i, task) in suite.iter().take(tasks).enumerate() {
            let run_id = (rep * tasks + i) as u64;
            let mut spec = RunSpec::for_task(FLEET_SEED, run_id, task.clone(), profile);
            if rate > 0.0 {
                spec = spec.with_chaos(ChaosProfile::full(CHAOS_SEED, rate));
                // Fault handling consumes steps (modal dismissal, stale
                // re-suggestions, dropped actions), so extend the step
                // budget by the expected injection count — the curve
                // should measure recovery ability, not budget starvation.
                let base = spec.config.max_steps;
                spec.config.max_steps = base + (base as f64 * rate).ceil() as usize;
            }
            out.push(spec);
        }
    }
    out
}

fn fleet(workers: usize) -> Fleet {
    Fleet::new(FleetConfig {
        workers,
        queue_capacity: 2 * workers.max(1),
        // Single attempt: the curves measure in-run robustness, not how
        // many scheduler retries it takes to luck past the faults.
        retry: RetryPolicy::none(),
        fleet_seed: FLEET_SEED,
        use_shared: true,
    })
}

fn point(
    profile: FmProfile,
    rate: f64,
    report: &FleetReport,
    baseline_wins: &std::collections::HashSet<u64>,
) -> ChaosPoint {
    let o = &report.outcome;
    let runs = o.records.len();
    let surviving = o
        .records
        .iter()
        .filter(|r| r.result.success && baseline_wins.contains(&r.run_id))
        .count();
    let failures_total = o.failures_total();
    let recoveries_total = o.recoveries_total();
    let faults_total = o.faults_injected_total();
    ChaosPoint {
        profile: profile.name().to_string(),
        fault_rate: rate,
        runs,
        completed: o.succeeded,
        completion_rate: o.completion_rate(),
        failures_total,
        recoveries_total,
        recovery_rate: if failures_total > 0 {
            recoveries_total as f64 / failures_total as f64
        } else {
            0.0
        },
        faults_injected_total: faults_total,
        mean_faults_per_run: faults_total as f64 / runs.max(1) as f64,
        survival_of_baseline: surviving as f64 / baseline_wins.len().max(1) as f64,
    }
}

/// FNV-1a digest of the merged trace (same construction as fleet_bench):
/// covers every trace byte while keeping the determinism dump small.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Per profile: completion monotone non-increasing in fault rate — up to
/// one rescued run of slack per point, because a fault can legitimately
/// *rescue* a run (an injected session expiry forces a re-login that
/// fixes a task the fault-free trajectory fails; the crucible's
/// chaos-isolation oracle documents the same finding, which is why it
/// never asserts naive monotonicity). Across profiles: the oracle loses
/// the least completion end-to-end.
fn shape_check(
    points: &[ChaosPoint],
    profiles: &[FmProfile],
    rates: &[f64],
    runs_per_point: usize,
) -> Result<(), String> {
    let get = |p: FmProfile, r: f64| {
        points
            .iter()
            .find(|pt| pt.profile == p.name() && pt.fault_rate == r)
            .expect("sweep covers the grid")
    };
    let rescue_slack = 1.0 / runs_per_point as f64 + 1e-9;
    for &p in profiles {
        let mut prev = f64::INFINITY;
        for &r in rates {
            let c = get(p, r).completion_rate;
            if c > prev + rescue_slack {
                return Err(format!(
                    "{} completion rose from {prev:.3} to {c:.3} at rate {r}",
                    p.name()
                ));
            }
            prev = c;
        }
    }
    // "Degrades least" is judged run-matched: of the runs a profile wins
    // fault-free, how many does it keep at the top fault rate? Raw
    // completion drop would punish the oracle for starting at the
    // ceiling — a profile that fails a task with or without chaos tells
    // us nothing about its recovery ability on that task.
    let survival_of = |p: FmProfile| get(p, *rates.last().unwrap()).survival_of_baseline;
    let oracle_survival = survival_of(FmProfile::Oracle);
    for &p in profiles {
        if p != FmProfile::Oracle && survival_of(p) > oracle_survival + 1e-9 {
            return Err(format!(
                "oracle should degrade least: oracle keeps {oracle_survival:.3} of its wins, {} keeps {:.3}",
                p.name(),
                survival_of(p)
            ));
        }
    }
    Ok(())
}

fn main() {
    eclair_trace::perf::reset();
    let (tasks, reps, rates): (usize, usize, Vec<f64>) = if fast_mode() {
        (8, 1, vec![0.0, 0.3])
    } else {
        (30, 3, vec![0.0, 0.1, 0.25, 0.5])
    };
    let profiles = [FmProfile::Oracle, FmProfile::CogAgent18b, FmProfile::Gpt4V];
    println!(
        "chaos_bench: {} tasks x {} reps, rates {:?}, seeds fleet={} chaos={}",
        tasks, reps, rates, FLEET_SEED, CHAOS_SEED
    );

    // Determinism gate on the canonical point (GPT-4 at the top rate):
    // sequential vs 4-worker pool must serialize byte-identically.
    let top_rate = *rates.last().unwrap();
    let canon_seq = fleet(1)
        .run_sequential(specs(FmProfile::Gpt4V, top_rate, tasks, reps))
        .expect("sequential canonical point");
    let canon_par = fleet(4)
        .run(specs(FmProfile::Gpt4V, top_rate, tasks, reps))
        .expect("parallel canonical point");
    let determinism_ok = canon_seq.outcome.to_json() == canon_par.outcome.to_json()
        && canon_seq.merged_trace_jsonl().expect("merged trace")
            == canon_par.merged_trace_jsonl().expect("merged trace");
    println!(
        "determinism (gpt-4v @ {top_rate}): {}",
        if determinism_ok { "ok" } else { "MISMATCH" }
    );
    // Metrics come from the sequential canonical point, which ran on
    // this thread — pure in the seeds, byte-stable across invocations.
    let mut metrics = fleet_metrics(&canon_seq.outcome, &canon_seq.merged_trace);
    metrics.absorb_perf(&eclair_trace::perf::snapshot());

    let mut points = Vec::new();
    for &profile in &profiles {
        let mut baseline_wins = std::collections::HashSet::new();
        for &rate in &rates {
            let report = fleet(4)
                .run(specs(profile, rate, tasks, reps))
                .expect("sweep point");
            if rate == rates[0] {
                baseline_wins = report
                    .outcome
                    .records
                    .iter()
                    .filter(|r| r.result.success)
                    .map(|r| r.run_id)
                    .collect();
            }
            let pt = point(profile, rate, &report, &baseline_wins);
            println!(
                "{:<12} rate {:.2}: completion {:.2} ({}/{}), survival {:.2}, recovery {:.2} ({}/{}), {:.1} faults/run",
                pt.profile,
                rate,
                pt.completion_rate,
                pt.completed,
                pt.runs,
                pt.survival_of_baseline,
                pt.recovery_rate,
                pt.recoveries_total,
                pt.failures_total,
                pt.mean_faults_per_run,
            );
            points.push(pt);
        }
    }

    let shape = shape_check(&points, &profiles, &rates, tasks * reps);
    if let Err(e) = &shape {
        eprintln!("shape violation: {e}");
    }

    let artifact = ChaosBenchJson {
        suite_tasks: tasks,
        reps,
        fleet_seed: FLEET_SEED,
        chaos_seed: CHAOS_SEED,
        fault_rates: rates.clone(),
        profiles: profiles.iter().map(|p| p.name().to_string()).collect(),
        determinism: if determinism_ok { "ok" } else { "MISMATCH" }.to_string(),
        shape: match &shape {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("VIOLATED: {e}"),
        },
        points,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");

    if let Some(path) = arg_value("--determinism-out") {
        let det = format!(
            "{}\ntrace_fnv1a={:016x}\n",
            canon_seq.outcome.to_json(),
            fnv1a(&canon_seq.merged_trace_jsonl().expect("merged trace"))
        );
        std::fs::write(&path, det).expect("write determinism artifact");
        println!("wrote {path}");
    }
    emit_metrics(&metrics);

    if !determinism_ok {
        eprintln!("FAIL: chaos fleet diverged between sequential and concurrent execution");
        std::process::exit(1);
    }
    if shape.is_err() {
        eprintln!("FAIL: completion/recovery curves violate the expected shape");
        std::process::exit(1);
    }
}

//! Corpus bench: expand the task-template DSL into the full generated
//! corpus, re-prove every gold trace against its own predicate, and emit
//! a byte-reproducible `BENCH_corpus.json`.
//!
//! Usage:
//!   corpus_bench [--out BENCH_corpus.json]
//!
//! The artifact carries no wall-clock — task counts per site and per
//! template, the self-validation pass rate, predicate diversity, and the
//! FNV-1a manifest digest — so two back-to-back invocations must produce
//! byte-identical files (the CI `corpus-smoke` job diffs them). The
//! bench itself also generates the corpus twice and byte-compares the
//! manifests, so a single invocation already proves reproducibility.
//! Any self-validation miss or manifest divergence exits 1.

use std::time::Instant;

use eclair_bench::emit_metrics;
use eclair_corpus::{generate, CORPUS_SEED};
use eclair_obs::MetricsRegistry;
use serde::Serialize;

/// One template family's row in the artifact.
#[derive(Debug, Serialize)]
struct TemplateRow {
    name: String,
    site: String,
    /// Tasks generated from this template.
    generated: usize,
    /// Full Cartesian parameter space the family was sampled from.
    space: usize,
}

/// The whole artifact. Deliberately wall-clock-free: byte-reproducible.
#[derive(Debug, Serialize)]
struct CorpusBenchJson {
    master_seed: u64,
    total_tasks: usize,
    handwritten: usize,
    generated: usize,
    /// `(site name, task count)` in `Site::ALL` order.
    per_site: Vec<(String, usize)>,
    templates: Vec<TemplateRow>,
    /// Gold traces replayed on pristine sessions during the sweep.
    self_validation_checked: usize,
    /// Traces whose own success predicate held (must equal `checked`).
    self_validation_passed: usize,
    /// Distinct probe kinds (the part before the first `:`) asserted
    /// across all success predicates — predicate diversity.
    probe_kinds: usize,
    /// FNV-1a digest of the serialized manifest; pins every byte.
    manifest_digest: String,
    /// Whether a second, independent generation produced a
    /// byte-identical manifest.
    regeneration_identical: bool,
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    println!("corpus_bench: expanding corpus from master seed 0x{CORPUS_SEED:016x}");
    let t0 = Instant::now();

    let corpus = match generate(CORPUS_SEED) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("FAIL: corpus generation refused: {e}");
            std::process::exit(1);
        }
    };
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Reproducibility: a second expansion must agree on every byte.
    let twin = generate(CORPUS_SEED).expect("second generation");
    let regeneration_identical = corpus.manifest.to_json() == twin.manifest.to_json();

    // Self-validation sweep: replay every gold trace on a pristine
    // session and demand its own predicate holds. Generation already
    // refused any miss, so this re-proves the invariant from outside.
    let mut passed = 0usize;
    let mut failures = Vec::new();
    for task in &corpus.tasks {
        match task.verify_gold() {
            Ok(()) => passed += 1,
            Err(e) => failures.push(e),
        }
    }

    let mut kinds: Vec<&str> = corpus
        .tasks
        .iter()
        .flat_map(|t| t.success.probes.iter())
        .map(|(k, _)| k.split(':').next().unwrap_or(k))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();

    let m = &corpus.manifest;
    println!(
        "{} tasks ({} handwritten + {} generated) across {} sites in {gen_ms:.1} ms",
        m.total_tasks,
        m.handwritten,
        m.generated,
        m.per_site.len()
    );
    println!(
        "self-validation {passed}/{} passed, {} probe kinds, manifest digest {:016x}",
        corpus.tasks.len(),
        kinds.len(),
        m.digest()
    );
    for f in &failures {
        println!("SELF-VALIDATION MISS: {f}");
    }

    let mut metrics = MetricsRegistry::new();
    metrics.inc("corpus.tasks", m.total_tasks as u64);
    metrics.inc("corpus.generated", m.generated as u64);
    metrics.inc("corpus.templates", m.templates.len() as u64);
    metrics.inc("corpus.self_validation_failures", failures.len() as u64);

    let artifact = CorpusBenchJson {
        master_seed: m.master_seed,
        total_tasks: m.total_tasks,
        handwritten: m.handwritten,
        generated: m.generated,
        per_site: m.per_site.clone(),
        templates: m
            .templates
            .iter()
            .map(|t| TemplateRow {
                name: t.name.clone(),
                site: t.site.clone(),
                generated: t.generated,
                space: t.space,
            })
            .collect(),
        self_validation_checked: corpus.tasks.len(),
        self_validation_passed: passed,
        probe_kinds: kinds.len(),
        manifest_digest: format!("{:016x}", m.digest()),
        regeneration_identical,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_corpus.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");
    emit_metrics(&metrics);

    if !regeneration_identical {
        eprintln!("FAIL: second generation diverged from the first");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!(
            "FAIL: {} gold traces missed their own predicate",
            failures.len()
        );
        std::process::exit(1);
    }
}

//! Regenerate the Section 3 case-study dynamics: an RPA deployment under
//! quarterly UI drift with bounded maintenance, vs ECLAIR's day-one agent.

use eclair_bench::{
    automate_sweep, emit_metrics, fast_mode, render_trace_rollup, summary_snapshot, trace_out_arg,
};
use eclair_core::experiments::case_study;
use eclair_metrics::table::fmt2;
use eclair_metrics::Table;

fn main() {
    eclair_trace::perf::reset();
    let cfg = case_study::CaseStudyConfig {
        months: if fast_mode() { 6 } else { 12 },
        eclair_reps: if fast_mode() { 1 } else { 3 },
        ..Default::default()
    };
    let result = case_study::run(cfg);
    println!("Section 3 case studies: RPA deployment dynamics (invoice + eligibility workflows)\n");
    let mut t = Table::new(vec!["month", "RPA accuracy", "fixes", "UI update"]).numeric();
    for m in &result.rpa.months {
        t.row(vec![
            m.month.to_string(),
            fmt2(m.accuracy),
            m.fixes_applied.to_string(),
            if m.drift_applied { "yes" } else { "" }.to_string(),
        ]);
    }
    println!("{}", t.to_ascii());
    println!(
        "\nRPA: initial accuracy {} → peak {} (paper: ~60% → ~95% after months of fixes)",
        fmt2(result.rpa.initial_accuracy()),
        fmt2(result.rpa.peak_accuracy())
    );
    if let Some(m) = result.rpa.months_to_reach(0.9) {
        println!("RPA crosses 90% in month {m}");
    }
    println!(
        "\nECLAIR on the same workflows, day one, from written SOPs: {} completion",
        fmt2(result.eclair_completion)
    );
    println!(
        "FM cost per run: ${:.3}; cumulative cost at horizon (1k items/mo): RPA ${:.0} vs ECLAIR ${:.0}",
        result.eclair_cost_per_run, result.rpa_cum_cost, result.eclair_cum_cost
    );
    println!("\ntrace rollup (ECLAIR side):");
    println!("{}", render_trace_rollup(&result.trace));
    if let Some(path) = trace_out_arg() {
        let sweep = automate_sweep(if fast_mode() { 3 } else { 10 }, 7);
        match std::fs::write(&path, &sweep.jsonl) {
            Ok(()) => println!(
                "flight record: {} events written to {}",
                sweep.summary.events,
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    match result.shape_holds() {
        Ok(()) => println!("\nshape check: PASS (60%→95% ramp; agent viable from day one)"),
        Err(e) => println!("\nshape check: FAIL — {e}"),
    }
    emit_metrics(&summary_snapshot(&result.trace));
}

//! Fleet throughput bench: sweep worker counts over the 30-task suite,
//! verify the determinism-under-concurrency contract, and emit a
//! machine-readable `BENCH_fleet.json` so the repo has a perf trajectory.
//!
//! Usage:
//!   fleet_bench [--out BENCH_fleet.json] [--determinism-out PATH]
//!               [--trace-out PATH] [--metrics-out PATH]
//!
//! `--determinism-out` writes the deterministic fleet outcome (records +
//! merged-trace digest) to a file; two back-to-back invocations must
//! produce byte-identical files (the CI smoke job diffs them).
//! `--trace-out` exports the merged flight record as JSONL (the input
//! `eclair-analyze` consumes); `--metrics-out` writes the byte-stable
//! `eclair-obs/v1` metrics snapshot CI gates against a committed
//! baseline. `ECLAIR_FAST=1` shrinks the sweep for CI.

use eclair_bench::{emit_metrics, fast_mode, fleet_metrics, trace_out_arg};
use eclair_fleet::{Fleet, FleetConfig, FleetReport, RetryPolicy, RunSpec};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use serde::Serialize;

/// One row of the worker sweep.
#[derive(Debug, Serialize)]
struct WorkerPoint {
    workers: usize,
    wall_ms: f64,
    runs_per_sec: f64,
    speedup_vs_sequential: f64,
    p50_latency_steps: u64,
    p95_latency_steps: u64,
    mean_latency_steps: f64,
    /// Virtual-time makespan under greedy list scheduling — pure in the
    /// specs and worker count, byte-stable across hosts.
    vt_makespan_us: u64,
    /// Virtual-time speedup vs the summed per-run virtual latency.
    vt_speedup: f64,
    retries: u64,
    succeeded: u64,
    failed: u64,
    queue_max_depth: usize,
    submit_waits: u64,
}

/// The whole artifact.
#[derive(Debug, Serialize)]
struct FleetBenchJson {
    suite_tasks: usize,
    reps: usize,
    runs: usize,
    fleet_seed: u64,
    profile: String,
    /// Host parallelism: threaded speedup is bounded by this, so a
    /// 1-core CI box legitimately reports ~1x while an 8-core host
    /// reports the >= 4x the fleet is built for.
    host_cores: usize,
    determinism: String,
    sequential_wall_ms: f64,
    points: Vec<WorkerPoint>,
}

fn specs(fleet_seed: u64, tasks: usize, reps: usize) -> Vec<RunSpec> {
    let suite = all_tasks();
    let mut out = Vec::with_capacity(tasks * reps);
    for rep in 0..reps {
        for (i, task) in suite.iter().take(tasks).enumerate() {
            let run_id = (rep * tasks + i) as u64;
            out.push(RunSpec::for_task(
                fleet_seed,
                run_id,
                task.clone(),
                FmProfile::Gpt4V,
            ));
        }
    }
    out
}

fn wall_ms(r: &FleetReport) -> f64 {
    r.timing.wall_nanos as f64 / 1e6
}

/// FNV-1a digest of the merged trace, so the determinism artifact stays
/// small while still covering every trace byte.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    eclair_trace::perf::reset();
    let fleet_seed = 2024u64;
    let (tasks, reps, worker_counts): (usize, usize, Vec<usize>) = if fast_mode() {
        (8, 1, vec![1, 4])
    } else {
        (30, 2, vec![1, 2, 4, 8])
    };
    let retry = RetryPolicy::default();
    println!(
        "fleet_bench: {} tasks x {} reps = {} runs, GPT-4 profile, seed {}",
        tasks,
        reps,
        tasks * reps,
        fleet_seed
    );

    // Sequential baseline: same specs, one thread, no queue.
    let baseline_fleet = Fleet::new(FleetConfig {
        workers: 1,
        retry,
        fleet_seed,
        ..FleetConfig::default()
    });
    let baseline = baseline_fleet
        .run_sequential(specs(fleet_seed, tasks, reps))
        .expect("sequential baseline");
    let baseline_ms = wall_ms(&baseline);
    let baseline_json = baseline.outcome.to_json();
    let baseline_trace = baseline.merged_trace_jsonl().expect("baseline trace");
    println!(
        "sequential baseline: {:.1} ms, {:.1} runs/s, {} succeeded, {} retries",
        baseline_ms,
        baseline.timing.runs_per_sec,
        baseline.outcome.succeeded,
        baseline.outcome.retries_total
    );
    // The sequential baseline ran on this thread, so its perf counters
    // are in scope here; the worker sweep below runs on other threads
    // and cannot pollute the snapshot.
    let mut metrics = fleet_metrics(&baseline.outcome, &baseline.merged_trace);
    metrics.absorb_perf(&eclair_trace::perf::snapshot());
    if let Some(path) = trace_out_arg() {
        std::fs::write(&path, &baseline_trace).expect("write flight record");
        println!("flight record -> {}", path.display());
    }

    let mut determinism_ok = true;
    let mut points = Vec::new();
    for &workers in &worker_counts {
        let fleet = Fleet::new(FleetConfig {
            workers,
            queue_capacity: 2 * workers,
            retry,
            fleet_seed,
            use_shared: true,
        });
        let report = fleet
            .run(specs(fleet_seed, tasks, reps))
            .expect("fleet run");
        let ok = report.outcome.to_json() == baseline_json
            && report.merged_trace_jsonl().expect("merged trace") == baseline_trace;
        determinism_ok &= ok;
        let ms = wall_ms(&report);
        println!(
            "workers={workers}: {:.1} ms, {:.1} runs/s, speedup {:.2}x (virtual {:.2}x), p50 {} steps, p95 {} steps, backpressure waits {}, deterministic: {}",
            ms,
            report.timing.runs_per_sec,
            baseline_ms / ms.max(1e-9),
            report.timing.vt_speedup,
            report.outcome.latency_steps.p50,
            report.outcome.latency_steps.p95,
            report.timing.submit_waits,
            if ok { "yes" } else { "NO" },
        );
        points.push(WorkerPoint {
            workers,
            wall_ms: ms,
            runs_per_sec: report.timing.runs_per_sec,
            speedup_vs_sequential: baseline_ms / ms.max(1e-9),
            p50_latency_steps: report.outcome.latency_steps.p50,
            p95_latency_steps: report.outcome.latency_steps.p95,
            mean_latency_steps: report.outcome.latency_steps.mean,
            vt_makespan_us: report.timing.vt_makespan_us,
            vt_speedup: report.timing.vt_speedup,
            retries: report.outcome.retries_total,
            succeeded: report.outcome.succeeded,
            failed: report.outcome.failed,
            queue_max_depth: report.timing.queue_max_depth,
            submit_waits: report.timing.submit_waits,
        });
    }

    let artifact = FleetBenchJson {
        suite_tasks: tasks,
        reps,
        runs: tasks * reps,
        fleet_seed,
        profile: FmProfile::Gpt4V.name().to_string(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        determinism: if determinism_ok { "ok" } else { "MISMATCH" }.to_string(),
        sequential_wall_ms: baseline_ms,
        points,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");

    if let Some(path) = arg_value("--determinism-out") {
        let det = format!(
            "{}\ntrace_fnv1a={:016x}\n",
            baseline_json,
            fnv1a(&baseline_trace)
        );
        std::fs::write(&path, det).expect("write determinism artifact");
        println!("wrote {path}");
    }
    emit_metrics(&metrics);

    if !determinism_ok {
        eprintln!("FAIL: concurrent fleet diverged from the sequential baseline");
        std::process::exit(1);
    }
}

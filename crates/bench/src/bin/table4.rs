//! Regenerate the paper's Table 4 (Validate: self-monitoring).

use eclair_bench::{emit_metrics, fast_mode, render_table4, render_trace_rollup, summary_snapshot};
use eclair_core::experiments::table4;

fn main() {
    eclair_trace::perf::reset();
    let cfg = table4::Table4Config {
        tasks: if fast_mode() { 8 } else { 30 },
        ..Default::default()
    };
    let result = table4::run(cfg);
    println!("Table 4: (Validate) performance of the FM on self-validation tasks\n");
    println!("{}", render_table4(&result));
    println!();
    println!("{}", result.paper_comparison().render());
    println!("trace rollup:\n{}", render_trace_rollup(&result.trace));
    match result.shape_holds() {
        Ok(()) => {
            println!("shape check: PASS (workflow-level checks strong; integrity recall collapses)")
        }
        Err(e) => println!("shape check: FAIL — {e}"),
    }
    emit_metrics(&summary_snapshot(&result.trace));
}

//! Virtual-time observability bench: run the 30-task suite once,
//! sequentially, then compute what the fleet's virtual clock says the
//! same work costs on 1/2/4/8 workers — no threads involved, so the
//! speedup curve is pure in the seed and identical on every host.
//!
//! Usage:
//!   obs_bench [--out BENCH_obs.json] [--trace-out PATH] [--metrics-out PATH]
//!
//! The artifact carries per-worker virtual makespans and speedups plus
//! per-span-kind latency percentiles (p50/p95/p99 over inclusive virtual
//! time). It is byte-reproducible: two back-to-back invocations must
//! produce identical files. Two shape gates exit 1 when violated:
//!
//! * `additive`: the span profiler's exclusive times telescope back to
//!   the root total (same invariant the crucible's `vt-additive` oracle
//!   pins);
//! * `speedup_shape`: virtual speedup strictly increases with the worker
//!   count (non-strict in `ECLAIR_FAST=1`, where the tiny suite can
//!   saturate early).

use std::collections::BTreeMap;

use eclair_bench::{emit_metrics, fast_mode, fleet_metrics, trace_out_arg};
use eclair_fleet::{virtual_makespan, Fleet, FleetConfig, LatencyStats, RetryPolicy, RunSpec};
use eclair_fm::FmProfile;
use eclair_obs::{profile_spans, span_inclusive_durations};
use eclair_sites::all_tasks;
use serde::Serialize;

/// One worker count's virtual-time point.
#[derive(Debug, Serialize)]
struct ObsPoint {
    workers: usize,
    /// Makespan under greedy list scheduling of the per-run virtual
    /// durations onto `workers` lanes.
    vt_makespan_us: u64,
    /// `Σ vt_total_us / vt_makespan_us`.
    vt_speedup: f64,
}

/// The whole artifact. No wall-clock anywhere: byte-reproducible.
#[derive(Debug, Serialize)]
struct ObsBenchJson {
    suite_tasks: usize,
    reps: usize,
    runs: usize,
    fleet_seed: u64,
    profile: String,
    /// Σ per-run `vt_total_us` — the 1-worker makespan.
    vt_total_us: u64,
    /// Per-run virtual latency distribution.
    run_latency_vt_us: LatencyStats,
    /// Inclusive virtual-time percentiles per span kind.
    phase_latency_vt_us: BTreeMap<String, LatencyStats>,
    additive: String,
    speedup_shape: String,
    points: Vec<ObsPoint>,
}

fn specs(fleet_seed: u64, tasks: usize, reps: usize) -> Vec<RunSpec> {
    let suite = all_tasks();
    let mut out = Vec::with_capacity(tasks * reps);
    for rep in 0..reps {
        for (i, task) in suite.iter().take(tasks).enumerate() {
            let run_id = (rep * tasks + i) as u64;
            out.push(RunSpec::for_task(
                fleet_seed,
                run_id,
                task.clone(),
                FmProfile::Gpt4V,
            ));
        }
    }
    out
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    eclair_trace::perf::reset();
    let fleet_seed = 2024u64;
    let (tasks, reps, worker_counts): (usize, usize, Vec<usize>) = if fast_mode() {
        (8, 1, vec![1, 4])
    } else {
        (30, 2, vec![1, 2, 4, 8])
    };
    println!(
        "obs_bench: {} tasks x {} reps = {} runs, GPT-4 profile, seed {}",
        tasks,
        reps,
        tasks * reps,
        fleet_seed
    );

    // One sequential execution yields everything: per-run virtual
    // durations are worker-independent, so every worker count's makespan
    // is a scheduling computation over the same numbers.
    let report = Fleet::new(FleetConfig {
        workers: 1,
        retry: RetryPolicy::default(),
        fleet_seed,
        ..FleetConfig::default()
    })
    .run_sequential(specs(fleet_seed, tasks, reps))
    .expect("sequential fleet run");

    let durations: Vec<u64> = report
        .outcome
        .records
        .iter()
        .map(|r| r.vt_total_us)
        .collect();
    let vt_total_us: u64 = durations.iter().sum();

    let mut points = Vec::new();
    let mut speedup_shape_ok = true;
    let mut prev_speedup = 0.0f64;
    for &workers in &worker_counts {
        let vt_makespan_us = virtual_makespan(&durations, workers);
        let vt_speedup = vt_total_us as f64 / vt_makespan_us.max(1) as f64;
        let ok = if fast_mode() {
            vt_speedup >= prev_speedup
        } else {
            vt_speedup > prev_speedup
        };
        speedup_shape_ok &= ok;
        println!(
            "workers={workers}: virtual makespan {:.1} s, virtual speedup {vt_speedup:.2}x{}",
            vt_makespan_us as f64 / 1e6,
            if ok { "" } else { "  <- NOT INCREASING" },
        );
        points.push(ObsPoint {
            workers,
            vt_makespan_us,
            vt_speedup,
        });
        prev_speedup = vt_speedup;
    }

    let profile = profile_spans(&report.merged_trace);
    let additive_ok = profile.is_additive();
    println!(
        "span additivity: {} ({} us exclusive over {} root-us, {} paths)",
        if additive_ok { "ok" } else { "VIOLATED" },
        profile.exclusive_sum_us,
        profile.total_root_us,
        profile.paths.len(),
    );

    let mut phase_latency_vt_us = BTreeMap::new();
    for (kind, samples) in span_inclusive_durations(&report.merged_trace) {
        let stats = LatencyStats::from_samples(&samples);
        println!(
            "{kind:<10} n={:<5} p50 {:>9} us  p95 {:>9} us  p99 {:>9} us",
            samples.len(),
            stats.p50,
            stats.p95,
            stats.p99,
        );
        phase_latency_vt_us.insert(kind, stats);
    }

    let artifact = ObsBenchJson {
        suite_tasks: tasks,
        reps,
        runs: tasks * reps,
        fleet_seed,
        profile: FmProfile::Gpt4V.name().to_string(),
        vt_total_us,
        run_latency_vt_us: report.outcome.latency_vt_us,
        phase_latency_vt_us,
        additive: if additive_ok { "ok" } else { "VIOLATED" }.to_string(),
        speedup_shape: if speedup_shape_ok { "ok" } else { "VIOLATED" }.to_string(),
        points,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_obs.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");

    // Snapshot perf before the optional JSONL export below — rendering
    // the flight record bumps the export counters, and the snapshot must
    // not depend on which flags were passed.
    let mut metrics = fleet_metrics(&report.outcome, &report.merged_trace);
    metrics.absorb_perf(&eclair_trace::perf::snapshot());
    if let Some(path) = trace_out_arg() {
        std::fs::write(&path, report.merged_trace_jsonl().expect("merged trace"))
            .expect("write flight record");
        println!("flight record -> {}", path.display());
    }
    emit_metrics(&metrics);

    if !additive_ok {
        eprintln!("FAIL: virtual-time accounting is not additive over the span tree");
        std::process::exit(1);
    }
    if !speedup_shape_ok {
        eprintln!("FAIL: virtual speedup does not increase with worker count");
        std::process::exit(1);
    }
}

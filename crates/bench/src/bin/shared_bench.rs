//! Fleet-wide shared perception cache bench: execute the 30-task suite
//! twice on one [`Fleet`] — the second pass is the "re-run" a real fleet
//! performs constantly (replays, retries, sibling runs on the same
//! sites) — once with the shared cache off (the per-instance baseline,
//! where every percept is recomputed) and once with it on (where the
//! second pass is served entirely from the shards filled by the first).
//! A third leg runs seed-identical replica specs on 8 workers to
//! exercise single-flight dedup under real contention. Proves all legs
//! are byte-identical in outcomes and traces (shared-cache transparency)
//! and emits `BENCH_shared.json`.
//!
//! Usage:
//!   shared_bench [--out BENCH_shared.json]
//!
//! The artifact contains ONLY deterministic quantities. Sequential legs
//! report exact shard counters; the parallel leg reports only
//! scheduling-independent aggregates (`hits + coalesced` is fixed by the
//! workload even though the split between them is not — see
//! `eclair_shared::StatsSnapshot`). Two back-to-back invocations produce
//! byte-identical files (the CI shared-smoke job diffs them). Wall-clock
//! goes to stdout and is deliberately never serialized. `ECLAIR_FAST=1`
//! shrinks the suite for CI.

use eclair_bench::{emit_metrics, fast_mode, fleet_metrics};
use eclair_core::execute::GroundingStrategy;
use eclair_fleet::{specs_for_tasks, Fleet, FleetConfig, FleetReport, RunSpec};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use eclair_trace::perf;
use serde::Serialize;

/// The two sequential passes of one leg, plus everything the
/// transparency comparison needs.
struct Leg {
    first: FleetReport,
    second: FleetReport,
    wall_ms: f64,
}

/// Shard-level books for the sequential shared leg (fully deterministic:
/// one thread, so the hit/coalesce split cannot vary).
#[derive(Debug, Serialize)]
struct SharedLegJson {
    /// Percepts computed across both passes (== unique percepts: the
    /// second pass recomputes nothing).
    percepts_computed: u64,
    /// Second-pass lookups served straight from the shards.
    cross_run_hits: u64,
    /// `cross_run_hits / second-pass lookups`.
    cross_run_hit_rate: f64,
    /// FIFO evictions across both passes.
    evictions: u64,
    /// Tokens the shared layer re-accounted instead of recomputing
    /// (quarantined counter; identical meters either way).
    cross_run_cached_tokens: u64,
}

/// The per-instance baseline: same suite, same two passes, shared layer
/// off. Every percept the second pass needs is recomputed from scratch.
#[derive(Debug, Serialize)]
struct BaselineLegJson {
    /// Percepts computed across both passes (the memo misses of both
    /// passes — roughly double the shared leg's unique count).
    percepts_computed: u64,
    /// By construction: no state outlives a run's own model instance.
    cross_run_hits: u64,
    cross_run_hit_rate: f64,
}

/// The 8-worker replica leg: every task submitted twice at the same run
/// seed. Only scheduling-independent aggregates serialize.
#[derive(Debug, Serialize)]
struct ReplicaLegJson {
    workers: usize,
    /// Lookups served without recomputing (`hits + coalesced`; the split
    /// is scheduling-dependent, the sum is not).
    served_without_compute: u64,
    /// Unique percepts computed (single-flight leaders).
    percepts_computed: u64,
    /// The replica fleet's records and trace match a sequential
    /// execution of the same specs byte-for-byte.
    matches_sequential: bool,
}

/// The whole artifact. Deterministic by construction: no wall-clock, no
/// host facts, no racy counter splits.
#[derive(Debug, Serialize)]
struct SharedBenchJson {
    suite_tasks: usize,
    seed: u64,
    /// All four sequential reports (shared on/off x pass 1/2) serialize
    /// identical records JSON.
    outcomes_identical: bool,
    /// ... and identical merged trace JSONL.
    traces_identical: bool,
    shared: SharedLegJson,
    per_instance: BaselineLegJson,
    replicas: ReplicaLegJson,
}

fn suite(seed: u64, tasks: usize) -> Vec<RunSpec> {
    specs_for_tasks(
        seed,
        all_tasks().into_iter().take(tasks).collect(),
        FmProfile::Gpt4V,
    )
    .into_iter()
    .map(|mut s| {
        // Native grounding perceives every frame it clicks through (the
        // SoM-HTML default reads ground-truth boxes and never calls the
        // perception model), so this leg exercises the shared layer the
        // way a perception-bound fleet would.
        s.config.strategy = GroundingStrategy::Native;
        s
    })
    .collect()
}

/// Each task twice at an *identical* run seed (the duplicate re-uses the
/// original's seed under a fresh run id): maximal shared redundancy, the
/// single-flight layer's natural prey.
fn replica_suite(seed: u64, tasks: usize) -> Vec<RunSpec> {
    let firsts = suite(seed, tasks);
    let n = firsts.len() as u64;
    let mut specs = Vec::with_capacity(2 * firsts.len());
    for s in &firsts {
        let mut twin = s.clone();
        twin.run_id = s.run_id + n;
        specs.push(s.clone());
        specs.push(twin);
    }
    specs.sort_by_key(|s| s.run_id);
    specs
}

fn fleet(seed: u64, workers: usize, shared: bool) -> Fleet {
    Fleet::new(
        FleetConfig::default()
            .with_workers(workers)
            .with_seed(seed)
            .with_shared(shared),
    )
}

/// Two sequential passes of the suite on one fleet (so the second pass
/// sees whatever the first left in the shards).
fn leg(f: &Fleet, seed: u64, tasks: usize) -> Leg {
    let started = std::time::Instant::now();
    let first = f.run_sequential(suite(seed, tasks)).expect("first pass");
    let second = f.run_sequential(suite(seed, tasks)).expect("second pass");
    Leg {
        first,
        second,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let seed = 2024u64;
    let tasks = if fast_mode() { 8 } else { 30 };
    println!("shared_bench: {tasks} tasks x 2 passes, shared cache on/off, seed {seed}");

    // Shared leg: pass 1 fills the shards, pass 2 harvests them.
    perf::reset();
    let on_fleet = fleet(seed, 1, true);
    let after_none = on_fleet.shared_cache().stats();
    assert_eq!(after_none, Default::default(), "fresh fleet, empty books");
    let on = {
        let started = std::time::Instant::now();
        let first = on_fleet.run_sequential(suite(seed, tasks)).expect("pass 1");
        let mid = on_fleet.shared_cache().stats();
        let second = on_fleet.run_sequential(suite(seed, tasks)).expect("pass 2");
        (
            Leg {
                first,
                second,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
            },
            mid,
        )
    };
    let (on_leg, mid) = on;
    let end = on_fleet.shared_cache().stats();
    let on_counters = perf::snapshot();
    let pass2_lookups = (end.hits + end.misses) - (mid.hits + mid.misses);
    let cross_run_hits = end.hits - mid.hits;
    let shared_json = SharedLegJson {
        percepts_computed: end.misses,
        cross_run_hits,
        cross_run_hit_rate: if pass2_lookups == 0 {
            0.0
        } else {
            cross_run_hits as f64 / pass2_lookups as f64
        },
        evictions: end.evictions,
        cross_run_cached_tokens: on_counters.shared_cached_tokens,
    };

    // Per-instance baseline: same fleet shape, shared layer off. Each
    // run's percepts die with its model instance.
    perf::reset();
    let off_fleet = fleet(seed, 1, false);
    let off_leg = leg(&off_fleet, seed, tasks);
    let off_counters = perf::snapshot();
    assert_eq!(
        off_fleet.shared_cache().stats(),
        Default::default(),
        "a shared-off fleet never touches its shards"
    );
    let baseline_json = BaselineLegJson {
        percepts_computed: off_counters.perceive_memo_misses,
        cross_run_hits: 0,
        cross_run_hit_rate: 0.0,
    };

    // Replica leg: 8 workers over seed-identical twins. Single-flight
    // and shard hits split by scheduling; their sum does not.
    let rep_fleet = fleet(seed, 8, true);
    let rep = rep_fleet
        .run(replica_suite(seed, tasks))
        .expect("replica run");
    let rep_stats = rep_fleet.shared_cache().stats();
    let rep_seq = fleet(seed, 1, true)
        .run_sequential(replica_suite(seed, tasks))
        .expect("replica sequential");
    let matches_sequential = rep.outcome.to_json() == rep_seq.outcome.to_json()
        && rep.merged_trace_jsonl().expect("replica trace")
            == rep_seq.merged_trace_jsonl().expect("replica seq trace");
    let replicas_json = ReplicaLegJson {
        workers: 8,
        served_without_compute: rep_stats.hits + rep_stats.coalesced,
        percepts_computed: rep_stats.misses,
        matches_sequential,
    };

    // Transparency across every sequential leg: the shared layer must be
    // unobservable in records and traces alike.
    let base_json = on_leg.first.outcome.to_json();
    let base_trace = on_leg.first.merged_trace_jsonl().expect("trace");
    let outcomes_identical = [&on_leg.second, &off_leg.first, &off_leg.second]
        .iter()
        .all(|r| r.outcome.to_json() == base_json);
    let traces_identical = [&on_leg.second, &off_leg.first, &off_leg.second]
        .iter()
        .all(|r| r.merged_trace_jsonl().expect("trace") == base_trace);

    println!(
        "shared on : {:.1} ms, {} unique percepts, pass-2 hits {}/{} ({:.0}%), {} cached tokens",
        on_leg.wall_ms,
        shared_json.percepts_computed,
        shared_json.cross_run_hits,
        pass2_lookups,
        100.0 * shared_json.cross_run_hit_rate,
        shared_json.cross_run_cached_tokens,
    );
    println!(
        "shared off: {:.1} ms, {} percepts recomputed (cross-run hit rate 0 by construction)",
        off_leg.wall_ms, baseline_json.percepts_computed,
    );
    println!(
        "replicas  : 8 workers, {} served without compute ({} hits + {} coalesced, split is stdout-only), {} computed",
        replicas_json.served_without_compute,
        rep_stats.hits,
        rep_stats.coalesced,
        replicas_json.percepts_computed,
    );
    println!(
        "speedup   : {:.2}x on the two-pass suite (stdout only, not serialized)",
        off_leg.wall_ms / on_leg.wall_ms.max(1e-9)
    );
    println!(
        "transparency: outcomes {}, traces {}",
        if outcomes_identical {
            "identical"
        } else {
            "DIVERGED"
        },
        if traces_identical {
            "identical"
        } else {
            "DIVERGED"
        },
    );

    let artifact = SharedBenchJson {
        suite_tasks: tasks,
        seed,
        outcomes_identical,
        traces_identical,
        shared: shared_json,
        per_instance: baseline_json,
        replicas: replicas_json,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_shared.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");
    // Snapshot the shared leg: fleet totals plus its quarantined perf
    // counters (pure in the seed).
    let mut metrics = fleet_metrics(&on_leg.first.outcome, &on_leg.first.merged_trace);
    metrics.absorb_perf(&on_counters);
    emit_metrics(&metrics);

    if !outcomes_identical || !traces_identical {
        eprintln!("FAIL: the shared cache changed observable behavior");
        std::process::exit(1);
    }
    if !artifact.replicas.matches_sequential {
        eprintln!("FAIL: 8-worker replica run diverged from sequential");
        std::process::exit(1);
    }
    if artifact.shared.cross_run_hit_rate <= artifact.per_instance.cross_run_hit_rate {
        eprintln!(
            "FAIL: shared cross-run hit rate {:.2} not above the per-instance baseline {:.2}",
            artifact.shared.cross_run_hit_rate, artifact.per_instance.cross_run_hit_rate
        );
        std::process::exit(1);
    }
    if artifact.shared.cross_run_hit_rate < 0.95 {
        eprintln!(
            "FAIL: cross-run hit rate {:.2} below the 0.95 floor (a re-executed suite should be fully resident)",
            artifact.shared.cross_run_hit_rate
        );
        std::process::exit(1);
    }
}

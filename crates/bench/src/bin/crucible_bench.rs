//! Crucible sweep: run a fixed grid of generated scenarios through the
//! fleet, evaluate the full oracle registry on each, and emit a
//! byte-reproducible `BENCH_crucible.json`.
//!
//! Usage:
//!   crucible_bench [--out BENCH_crucible.json]
//!
//! The artifact carries no wall-clock — scenario counts, oracle-check
//! counts, violations, and an FNV-1a digest over every scenario's
//! serialized outcome — so two back-to-back invocations must produce
//! byte-identical files (the CI `crucible-smoke` job diffs them).
//! `ECLAIR_FAST=1` shrinks the sweep from 64 to 16 scenarios. Any oracle
//! violation exits 1 after printing the shrunk reproduction.

use eclair_bench::{emit_metrics, fast_mode};
use eclair_crucible::{evaluate, repro_snippet, run_scenario, shrink, Scenario};
use eclair_obs::MetricsRegistry;
use serde::Serialize;

/// The sweep's master seed: every scenario derives from it, so this one
/// number pins the whole artifact.
const MASTER_SEED: u64 = 0xEC1A_12C7_0C1B_1E00;

/// One scenario's row in the artifact.
#[derive(Debug, Serialize)]
struct ScenarioRow {
    id: u64,
    seed: u64,
    tasks: usize,
    profile: String,
    chaos_rate: f64,
    workers: usize,
    succeeded: u64,
    failed: u64,
    faults_injected: u64,
    oracle_checks: usize,
    violations: usize,
}

/// The whole artifact. Deliberately wall-clock-free: byte-reproducible.
#[derive(Debug, Serialize)]
struct CrucibleBenchJson {
    master_seed: u64,
    scenarios_explored: usize,
    oracle_checks_evaluated: usize,
    violations: usize,
    violation_details: Vec<String>,
    /// FNV-1a over every scenario's serialized fleet outcome, in id
    /// order — two invocations of the same sweep must agree on every
    /// byte of every outcome, not just on the counters.
    outcome_digest: String,
    rows: Vec<ScenarioRow>,
}

/// FNV-1a digest (same construction as fleet_bench / chaos_bench).
fn fnv1a_extend(h: &mut u64, text: &str) {
    for b in text.as_bytes() {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let sweep = if fast_mode() { 16u64 } else { 64u64 };
    println!("crucible_bench: {sweep}-scenario sweep, master seed 0x{MASTER_SEED:016x}");

    let mut rows = Vec::with_capacity(sweep as usize);
    let mut total_checks = 0usize;
    let mut violation_details = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut metrics = MetricsRegistry::new();

    for id in 0..sweep {
        let scenario = Scenario::generate(MASTER_SEED, id);
        let run = match run_scenario(&scenario) {
            Ok(run) => run,
            Err(e) => {
                // A malformed trace is itself a harness-level violation.
                violation_details.push(format!("scenario {id}: merge failed: {e}"));
                continue;
            }
        };
        let eval = evaluate(&run);
        total_checks += eval.checks;
        fnv1a_extend(&mut digest, &run.report.outcome.to_json());
        let o = &run.report.outcome;
        metrics.inc("crucible.scenarios", 1);
        metrics.inc("crucible.oracle_checks", eval.checks as u64);
        metrics.inc("crucible.violations", eval.violations.len() as u64);
        metrics.inc("fleet.succeeded", o.succeeded);
        metrics.inc("fleet.failed", o.failed);
        metrics.inc("chaos.faults_injected", o.faults_injected_total());
        rows.push(ScenarioRow {
            id,
            seed: scenario.seed,
            tasks: scenario.task_indices.len(),
            profile: scenario.profile.name().to_string(),
            chaos_rate: scenario.chaos_rate,
            workers: scenario.workers,
            succeeded: o.succeeded,
            failed: o.failed,
            faults_injected: o.faults_injected_total(),
            oracle_checks: eval.checks,
            violations: eval.violations.len(),
        });
        for v in &eval.violations {
            println!("VIOLATION scenario {id}: [{}] {}", v.oracle, v.detail);
            violation_details.push(format!("scenario {id}: [{}] {}", v.oracle, v.detail));
            // Shrink against the specific oracle that fired, then print
            // the paste-ready regression test.
            let oracle = v.oracle;
            let mut still_fires = |s: &Scenario| {
                run_scenario(s)
                    .map(|r| evaluate(&r).violations.iter().any(|w| w.oracle == oracle))
                    .unwrap_or(false)
            };
            let minimal = shrink(&scenario, &mut still_fires, 100).minimal;
            println!("shrunk reproduction:");
            println!("{}", repro_snippet(&minimal, oracle, Some(MASTER_SEED)));
        }
    }

    let violations = violation_details.len();
    println!(
        "{} scenarios, {} oracle checks, {} violations, outcome digest {digest:016x}",
        rows.len(),
        total_checks,
        violations
    );

    let artifact = CrucibleBenchJson {
        master_seed: MASTER_SEED,
        scenarios_explored: rows.len(),
        oracle_checks_evaluated: total_checks,
        violations,
        violation_details,
        outcome_digest: format!("{digest:016x}"),
        rows,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_crucible.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");
    emit_metrics(&metrics);

    if violations > 0 {
        eprintln!("FAIL: {violations} oracle violations across the sweep");
        std::process::exit(1);
    }
}

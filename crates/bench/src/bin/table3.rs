//! Regenerate the paper's Table 3 (Execute: grounding accuracy).

use eclair_bench::{emit_metrics, fast_mode, render_table3, render_trace_rollup, summary_snapshot};
use eclair_core::experiments::table3;

fn main() {
    eclair_trace::perf::reset();
    let cfg = table3::Table3Config {
        pages: if fast_mode() { Some(40) } else { None },
        ..Default::default()
    };
    let result = table3::run(cfg);
    println!("Table 3: (Execute) accuracy on grounding actions to GUI elements");
    println!("(Mind2Web-sim: 302 pages, WebUI-sim: 120 pages; HTML boxes WebUI-only)\n");
    println!("{}", render_table3(&result));
    println!();
    println!("{}", result.paper_comparison().render());
    println!("trace rollup:\n{}", render_trace_rollup(&result.trace));
    match result.shape_holds() {
        Ok(()) => println!(
            "shape check: PASS (SoM transforms GPT-4; CogAgent leads, esp. small elements)"
        ),
        Err(e) => println!("shape check: FAIL — {e}"),
    }
    emit_metrics(&summary_snapshot(&result.trace));
}

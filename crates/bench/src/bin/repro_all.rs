//! Run every experiment and print a combined paper-vs-measured summary —
//! the artifact EXPERIMENTS.md records.

use eclair_bench::*;
use eclair_core::experiments::{case_study, fig2, table1, table2, table3, table4};
use eclair_workflow::category::figure2_examples;

fn main() {
    eclair_trace::perf::reset();
    let fast = fast_mode();
    let mut passed = 0usize;
    let mut total = 0usize;
    let mut shapes: Vec<(String, Result<(), String>)> = Vec::new();
    let mut rollup = eclair_trace::RunSummary::default();

    println!("=== Table 1 ===\n");
    let t1 = table1::run(table1::Table1Config {
        tasks: if fast { 8 } else { 30 },
        ..Default::default()
    });
    println!("{}", render_table1(&t1));
    let c = t1.paper_comparison();
    println!("{}", c.render());
    println!("trace rollup:\n{}", render_trace_rollup(&t1.trace));
    passed += c.passed();
    total += c.rows.len();
    shapes.push(("Table 1".into(), t1.shape_holds()));
    rollup.merge(&t1.trace);

    println!("=== Table 2 ===\n");
    let t2 = table2::run(table2::Table2Config {
        tasks: if fast { 8 } else { 30 },
        reps: if fast { 1 } else { 3 },
        ..Default::default()
    });
    println!("{}", render_table2(&t2));
    let c = t2.paper_comparison();
    println!("{}", c.render());
    println!("trace rollup:\n{}", render_trace_rollup(&t2.trace));
    passed += c.passed();
    total += c.rows.len();
    shapes.push(("Table 2".into(), t2.shape_holds()));
    rollup.merge(&t2.trace);

    println!("=== Table 3 ===\n");
    let t3 = table3::run(table3::Table3Config {
        pages: if fast { Some(40) } else { None },
        ..Default::default()
    });
    println!("{}", render_table3(&t3));
    let c = t3.paper_comparison();
    println!("{}", c.render());
    println!("trace rollup:\n{}", render_trace_rollup(&t3.trace));
    passed += c.passed();
    total += c.rows.len();
    shapes.push(("Table 3".into(), t3.shape_holds()));
    rollup.merge(&t3.trace);

    println!("=== Table 4 ===\n");
    let t4 = table4::run(table4::Table4Config {
        tasks: if fast { 8 } else { 30 },
        ..Default::default()
    });
    println!("{}", render_table4(&t4));
    let c = t4.paper_comparison();
    println!("{}", c.render());
    println!("trace rollup:\n{}", render_trace_rollup(&t4.trace));
    passed += c.passed();
    total += c.rows.len();
    shapes.push(("Table 4".into(), t4.shape_holds()));
    rollup.merge(&t4.trace);

    println!("=== Figure 2 ===\n");
    let f2 = fig2::run();
    println!("{}", f2.render());
    let (rpa_cov, eclair_cov) = fig2::coverage(&figure2_examples());
    println!(
        "\ncoverage: RPA {:.0}% → ECLAIR {:.0}%",
        rpa_cov * 100.0,
        eclair_cov * 100.0
    );
    shapes.push(("Figure 2".into(), f2.shape_holds()));

    println!("\n=== Section 3 case study ===\n");
    let cs = case_study::run(case_study::CaseStudyConfig {
        months: if fast { 6 } else { 12 },
        eclair_reps: if fast { 1 } else { 3 },
        ..Default::default()
    });
    println!(
        "RPA ramp: {:.2} → {:.2}; ECLAIR day-one completion: {:.2}",
        cs.rpa.initial_accuracy(),
        cs.rpa.peak_accuracy(),
        cs.eclair_completion
    );
    println!("trace rollup:\n{}", render_trace_rollup(&cs.trace));
    shapes.push(("Case study".into(), cs.shape_holds()));
    rollup.merge(&cs.trace);

    println!("\n=== End-to-end sweep ===\n");
    let sweep = automate_sweep(if fast { 3 } else { 10 }, eclair_core::calibration::SEED);
    println!(
        "Eclair::automate over {} tasks: {}/{} complete",
        sweep.total, sweep.wins, sweep.total
    );
    println!("trace rollup:\n{}", render_trace_rollup(&sweep.summary));
    if let Some(path) = trace_out_arg() {
        match std::fs::write(&path, &sweep.jsonl) {
            Ok(()) => println!(
                "flight record: {} events written to {}",
                sweep.summary.events,
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    rollup.merge(&sweep.summary);
    emit_metrics(&summary_snapshot(&rollup));

    println!("\n=== Summary ===");
    println!("paper-vs-measured cells within band: {passed}/{total}");
    for (name, r) in &shapes {
        match r {
            Ok(()) => println!("{name}: shape PASS"),
            Err(e) => println!("{name}: shape FAIL — {e}"),
        }
    }
    if shapes.iter().any(|(_, r)| r.is_err()) {
        std::process::exit(1);
    }
}

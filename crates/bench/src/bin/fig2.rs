//! Regenerate the paper's Figure 2 (workflow-automatability taxonomy).

use eclair_bench::emit_metrics;
use eclair_core::experiments::fig2;
use eclair_obs::MetricsRegistry;
use eclair_workflow::category::figure2_examples;

fn main() {
    let result = fig2::run();
    println!("Figure 2: categories of workflows vs the technology able to automate them");
    println!("(the paper's five real hospital workflows; v=yes, ~=somewhat, x=no)\n");
    println!("{}", result.render());
    let (rpa, eclair) = fig2::coverage(&figure2_examples());
    println!(
        "\nportfolio coverage: RPA {:.0}% → ECLAIR {:.0}%  (the paper's 'could double\nthe amount of knowledge work that can be automated')",
        rpa * 100.0,
        eclair * 100.0
    );
    match result.shape_holds() {
        Ok(()) => println!("shape check: PASS (ECLAIR strictly extends RPA coverage)"),
        Err(e) => println!("shape check: FAIL — {e}"),
    }
    // No trace here — the taxonomy is a static analysis — so the
    // snapshot carries the coverage figures as basis-point gauges.
    let mut metrics = MetricsRegistry::new();
    metrics.set_gauge("fig2.coverage_rpa_bp", (rpa * 10_000.0).round() as i64);
    metrics.set_gauge(
        "fig2.coverage_eclair_bp",
        (eclair * 10_000.0).round() as i64,
    );
    metrics.set_gauge("fig2.workflows", figure2_examples().len() as i64);
    emit_metrics(&metrics);
}

//! Regenerate the paper's Figure 2 (workflow-automatability taxonomy).

use eclair_core::experiments::fig2;
use eclair_workflow::category::figure2_examples;

fn main() {
    let result = fig2::run();
    println!("Figure 2: categories of workflows vs the technology able to automate them");
    println!("(the paper's five real hospital workflows; v=yes, ~=somewhat, x=no)\n");
    println!("{}", result.render());
    let (rpa, eclair) = fig2::coverage(&figure2_examples());
    println!(
        "\nportfolio coverage: RPA {:.0}% → ECLAIR {:.0}%  (the paper's 'could double\nthe amount of knowledge work that can be automated')",
        rpa * 100.0,
        eclair * 100.0
    );
    match result.shape_holds() {
        Ok(()) => println!("shape check: PASS (ECLAIR strictly extends RPA coverage)"),
        Err(e) => println!("shape check: FAIL — {e}"),
    }
}

//! GUI→FM hot-path cache bench: run the 30-task suite twice per leg —
//! once through the fleet executor (the Execute hot path, frame-cache
//! heavy) and once through the full agent pipeline at the WD+KF evidence
//! level (Demonstrate → Execute → Validate, perception-memo heavy) — with
//! the caches on, then again under `ECLAIR_NO_CACHE=1`. Proves the two
//! legs are byte-identical (cache transparency) and emits
//! `BENCH_perf.json`.
//!
//! Usage:
//!   perf_bench [--out BENCH_perf.json]
//!
//! The artifact contains ONLY deterministic quantities — the quarantined
//! `eclair_trace::perf` counters, the transparency verdicts, and the
//! allocation micro-counts — so two back-to-back invocations produce
//! byte-identical files (the CI perf-smoke job diffs them). Wall-clock
//! speedup is printed to stdout and deliberately never serialized.
//! `ECLAIR_FAST=1` shrinks the suite for CI.

use eclair_bench::{emit_metrics, fast_mode, fleet_metrics, summary_metrics, SweepResult};
use eclair_core::demonstrate::EvidenceLevel;
use eclair_core::{Eclair, EclairConfig};
use eclair_fleet::{Fleet, FleetConfig, FleetReport, RetryPolicy, RunSpec};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use eclair_trace::perf::{self, PerfCounters};
use serde::Serialize;

/// The counters one leg of the sweep produced.
#[derive(Debug, Serialize)]
struct LegJson {
    cache_enabled: bool,
    frame_cache_hits: u64,
    frame_cache_misses: u64,
    frame_cache_invalidations: u64,
    frame_cache_hit_rate: f64,
    relayouts_avoided: u64,
    relayouts_full: u64,
    relayouts_partial: u64,
    dirty_nodes_visited: u64,
    layout_cache_hits: u64,
    intern_hits: u64,
    intern_misses: u64,
    /// High-water table size (gauge): distinct strings alive at leg end.
    intern_table_size: u64,
    arena_slots_reused: u64,
    perceive_memo_hits: u64,
    perceive_memo_misses: u64,
    perceive_memo_rate: f64,
    /// Tokens the memo served from cache — re-accounted identically into
    /// the meters (transparency), reported here for effectiveness only.
    cached_tokens: u64,
    fleet_succeeded: u64,
    fleet_failed: u64,
    pipeline_wins: usize,
    pipeline_total: usize,
}

/// Allocation micro-note for the trace export paths (satellite of the
/// same PR: `render_log` / `events_to_jsonl` now pre-size one buffer).
#[derive(Debug, Serialize)]
struct AllocJson {
    log_events_rendered: u64,
    log_allocations: u64,
    jsonl_events_rendered: u64,
    jsonl_allocations: u64,
    jsonl_events_per_allocation: f64,
}

/// The whole artifact. Deterministic by construction: no wall-clock, no
/// host facts — the same seed must serialize the same bytes anywhere.
#[derive(Debug, Serialize)]
struct PerfBenchJson {
    suite_tasks: usize,
    seed: u64,
    /// Cache-on and cache-off outcomes (fleet records + pipeline rollup)
    /// serialize identically.
    outcomes_identical: bool,
    /// Cache-on and cache-off traces are byte-identical.
    traces_identical: bool,
    cache_on: LegJson,
    cache_off: LegJson,
    trace_export: AllocJson,
}

/// Everything one leg produced, for the byte-comparison between legs.
struct Leg {
    fleet: FleetReport,
    fleet_trace: String,
    pipeline: SweepResult,
    counters: PerfCounters,
    wall_ms: f64,
}

fn fleet_specs(fleet_seed: u64, tasks: usize) -> Vec<RunSpec> {
    all_tasks()
        .iter()
        .take(tasks)
        .enumerate()
        .map(|(i, task)| RunSpec::for_task(fleet_seed, i as u64, task.clone(), FmProfile::Gpt4V))
        .collect()
}

/// `Eclair::automate` over the suite with ONE shared agent at the WD+KF
/// evidence level — the configuration whose Demonstrate phase actually
/// runs FM perception over key-frame pairs (WD+KF+ACT reads the action
/// log and never perceives), so the perception memo sees real traffic.
fn wdkf_sweep(n_tasks: usize, seed: u64) -> SweepResult {
    let tasks: Vec<_> = all_tasks().into_iter().take(n_tasks.max(1)).collect();
    let mut agent = Eclair::new(EclairConfig {
        seed,
        evidence: EvidenceLevel::WdKf,
        ..Default::default()
    });
    let mut wins = 0usize;
    for task in &tasks {
        if agent.automate(task).success {
            wins += 1;
        }
    }
    SweepResult {
        wins,
        total: tasks.len(),
        summary: agent.model().trace().summary(),
        jsonl: agent.model().trace().to_jsonl(),
    }
}

fn leg(tasks: usize, seed: u64, use_cache: bool) -> Leg {
    // The kill switch is the one knob that reaches every layer — session
    // construction, model construction, and the per-run executor config
    // all consult it — so the off leg runs exactly what a user setting
    // ECLAIR_NO_CACHE=1 would run.
    if use_cache {
        std::env::remove_var("ECLAIR_NO_CACHE");
    } else {
        std::env::set_var("ECLAIR_NO_CACHE", "1");
    }
    perf::reset();
    let started = std::time::Instant::now();
    let fleet = Fleet::new(FleetConfig {
        workers: 1,
        retry: RetryPolicy::default(),
        fleet_seed: seed,
        ..FleetConfig::default()
    })
    .run_sequential(fleet_specs(seed, tasks))
    .expect("sequential fleet sweep");
    let pipeline = wdkf_sweep(tasks, seed);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let counters = perf::snapshot();
    let fleet_trace = fleet.merged_trace_jsonl().expect("fleet trace");
    Leg {
        fleet,
        fleet_trace,
        pipeline,
        counters,
        wall_ms,
    }
}

fn leg_json(l: &Leg, cache_enabled: bool) -> LegJson {
    let c = &l.counters;
    LegJson {
        cache_enabled,
        frame_cache_hits: c.frame_cache_hits,
        frame_cache_misses: c.frame_cache_misses,
        frame_cache_invalidations: c.frame_cache_invalidations,
        frame_cache_hit_rate: c.frame_cache_hit_rate(),
        relayouts_avoided: c.relayouts_avoided,
        relayouts_full: c.relayouts_full,
        relayouts_partial: c.relayouts_partial,
        dirty_nodes_visited: c.dirty_nodes_visited,
        layout_cache_hits: c.layout_cache_hits,
        intern_hits: c.intern_hits,
        intern_misses: c.intern_misses,
        intern_table_size: c.intern_table_size,
        arena_slots_reused: c.arena_slots_reused,
        perceive_memo_hits: c.perceive_memo_hits,
        perceive_memo_misses: c.perceive_memo_misses,
        perceive_memo_rate: c.perceive_memo_rate(),
        cached_tokens: c.cached_tokens,
        fleet_succeeded: l.fleet.outcome.succeeded,
        fleet_failed: l.fleet.outcome.failed,
        pipeline_wins: l.pipeline.wins,
        pipeline_total: l.pipeline.total,
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let seed = 2024u64;
    let tasks = if fast_mode() { 8 } else { 30 };
    println!("perf_bench: {tasks} tasks x (fleet execute + WD+KF pipeline), seed {seed}");

    let on = leg(tasks, seed, true);
    let off = leg(tasks, seed, false);
    std::env::remove_var("ECLAIR_NO_CACHE");

    // Transparency: the whole point of the cache design. Outcomes, flight
    // records, and rollups must not know whether the cache existed.
    let outcomes_identical = on.fleet.outcome.to_json() == off.fleet.outcome.to_json()
        && on.pipeline.wins == off.pipeline.wins
        && on.pipeline.summary == off.pipeline.summary;
    let traces_identical =
        on.fleet_trace == off.fleet_trace && on.pipeline.jsonl == off.pipeline.jsonl;

    // The off leg's jsonl exports ran with the counters live on this
    // thread; the alloc note reads that snapshot (identical by
    // construction to the on leg's — same events, same buffers).
    let export = perf::snapshot();
    let trace_export = AllocJson {
        log_events_rendered: export.log_events_rendered,
        log_allocations: export.log_allocations,
        jsonl_events_rendered: export.jsonl_events_rendered,
        jsonl_allocations: export.jsonl_allocations,
        jsonl_events_per_allocation: if export.jsonl_allocations == 0 {
            0.0
        } else {
            export.jsonl_events_rendered as f64 / export.jsonl_allocations as f64
        },
    };

    let c = &on.counters;
    println!(
        "cache on : {:.1} ms, frame hits {}/{} ({:.0}%), relayouts avoided {}/{}, memo hits {}/{} ({:.0}%), {} cached tokens",
        on.wall_ms,
        c.frame_cache_hits,
        c.frame_cache_hits + c.frame_cache_misses,
        100.0 * c.frame_cache_hit_rate(),
        c.relayouts_avoided,
        c.relayouts_avoided + c.relayouts_full,
        c.perceive_memo_hits,
        c.perceive_memo_hits + c.perceive_memo_misses,
        100.0 * c.perceive_memo_rate(),
        c.cached_tokens,
    );
    println!(
        "layout   : {} full walks, {} cache replays, {} partial ({} dirty nodes), {} slots reused, {} interned strings",
        c.relayouts_full,
        c.layout_cache_hits,
        c.relayouts_partial,
        c.dirty_nodes_visited,
        c.arena_slots_reused,
        c.intern_table_size,
    );
    println!(
        "cache off: {:.1} ms (every frame rendered, every percept recomputed)",
        off.wall_ms
    );
    // Wall-clock is host-dependent, so it goes to stdout only — the JSON
    // artifact must stay byte-reproducible.
    println!(
        "speedup  : {:.2}x (stdout only, not serialized)",
        off.wall_ms / on.wall_ms.max(1e-9)
    );
    println!(
        "transparency: outcomes {}, traces {}",
        if outcomes_identical {
            "identical"
        } else {
            "DIVERGED"
        },
        if traces_identical {
            "identical"
        } else {
            "DIVERGED"
        },
    );

    let artifact = PerfBenchJson {
        suite_tasks: tasks,
        seed,
        outcomes_identical,
        traces_identical,
        cache_on: leg_json(&on, true),
        cache_off: leg_json(&off, false),
        trace_export,
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string(&artifact).expect("bench artifact serializes"),
    )
    .expect("write bench artifact");
    println!("wrote {out_path}");
    // Snapshot the cache-on leg: fleet + pipeline totals plus the leg's
    // own perf counters (pure in the seed either way).
    let mut metrics = fleet_metrics(&on.fleet.outcome, &on.fleet.merged_trace);
    summary_metrics(&mut metrics, &on.pipeline.summary);
    metrics.absorb_perf(&on.counters);
    emit_metrics(&metrics);

    if !outcomes_identical || !traces_identical {
        eprintln!("FAIL: caching changed observable behavior");
        std::process::exit(1);
    }
    if artifact.cache_on.frame_cache_hit_rate < 0.30 {
        eprintln!(
            "FAIL: frame-cache hit rate {:.2} below the 0.30 floor",
            artifact.cache_on.frame_cache_hit_rate
        );
        std::process::exit(1);
    }
    if artifact.cache_on.perceive_memo_rate < 0.20 {
        eprintln!(
            "FAIL: perceive memo rate {:.2} below the 0.20 floor",
            artifact.cache_on.perceive_memo_rate
        );
        std::process::exit(1);
    }
    // Arena gate: with the layout cache and dirty-subtree relayout in
    // place, full walks must stay at ≤1/5 of the pre-arena counts
    // (fast suite walked 138 times, full suite 457).
    let full_ceiling = if fast_mode() { 27 } else { 91 };
    if artifact.cache_on.relayouts_full > full_ceiling {
        eprintln!(
            "FAIL: {} full relayouts exceeds the {} ceiling",
            artifact.cache_on.relayouts_full, full_ceiling
        );
        std::process::exit(1);
    }
}

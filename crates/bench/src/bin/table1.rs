//! Regenerate the paper's Table 1 (Demonstrate: SOP generation).

use eclair_bench::{fast_mode, render_table1, render_trace_rollup};
use eclair_core::experiments::table1;

fn main() {
    let cfg = table1::Table1Config {
        tasks: if fast_mode() { 8 } else { 30 },
        ..Default::default()
    };
    let result = table1::run(cfg);
    println!(
        "Table 1: (Demonstrate) SOP generation, averaged over {} workflows\n",
        cfg.tasks
    );
    println!("{}", render_table1(&result));
    println!();
    println!("{}", result.paper_comparison().render());
    println!("trace rollup:\n{}", render_trace_rollup(&result.trace));
    match result.shape_holds() {
        Ok(()) => println!("shape check: PASS (evidence monotonicity holds)"),
        Err(e) => println!("shape check: FAIL — {e}"),
    }
}

//! Regenerate the paper's Table 1 (Demonstrate: SOP generation).

use eclair_bench::{emit_metrics, fast_mode, render_table1, render_trace_rollup, summary_snapshot};
use eclair_core::experiments::table1;

fn main() {
    eclair_trace::perf::reset();
    let cfg = table1::Table1Config {
        tasks: if fast_mode() { 8 } else { 30 },
        ..Default::default()
    };
    let result = table1::run(cfg);
    println!(
        "Table 1: (Demonstrate) SOP generation, averaged over {} workflows\n",
        cfg.tasks
    );
    println!("{}", render_table1(&result));
    println!();
    println!("{}", result.paper_comparison().render());
    println!("trace rollup:\n{}", render_trace_rollup(&result.trace));
    match result.shape_holds() {
        Ok(()) => println!("shape check: PASS (evidence monotonicity holds)"),
        Err(e) => println!("shape check: FAIL — {e}"),
    }
    emit_metrics(&summary_snapshot(&result.trace));
}

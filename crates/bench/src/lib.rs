//! # eclair-bench
//!
//! Benchmark harnesses regenerating every table and figure in the paper's
//! evaluation, plus Criterion micro-benchmarks over the substrates.
//!
//! Binaries (run with `cargo run --release -p eclair-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — SOP generation (Demonstrate) |
//! | `table2` | Table 2 — suggestion & completion (Execute) |
//! | `table3` | Table 3 — grounding accuracy (Execute) |
//! | `table4` | Table 4 — self-validation (Validate) |
//! | `fig2`   | Figure 2 — workflow-automatability taxonomy |
//! | `case_study` | Section 3 — RPA deployment dynamics vs ECLAIR |
//! | `repro_all` | everything above, with a paper-vs-measured summary |
//!
//! Every binary prints the paper's layout followed by a
//! [`eclair_metrics::PaperComparison`] block. Results are deterministic
//! under the default seed (`eclair_core::calibration::SEED`).

use eclair_core::experiments::{table1, table2, table3, table4};
use eclair_metrics::table::fmt2;
use eclair_metrics::Table;

/// Render Table 1 in the paper's layout.
pub fn render_table1(r: &table1::Table1Result) -> String {
    let mut t = Table::new(vec![
        "Method",
        "Missing",
        "Incorrect",
        "Total",
        "Precision",
        "Recall",
        "Correctness",
    ])
    .numeric();
    for row in &r.rows {
        t.row(vec![
            row.method.clone(),
            fmt2(row.missing),
            fmt2(row.incorrect),
            fmt2(row.total),
            fmt2(row.precision),
            fmt2(row.recall),
            fmt2(row.correctness),
        ]);
    }
    t.to_ascii()
}

/// Render Table 2 in the paper's layout.
pub fn render_table2(r: &table2::Table2Result) -> String {
    let mut t = Table::new(vec![
        "SOP",
        "Next Action Suggestion Acc.",
        "Overall Workflow Completion Acc.",
    ])
    .numeric();
    for row in &r.rows {
        t.row(vec![
            if row.with_sop { "yes" } else { "no" }.to_string(),
            fmt2(row.suggestion_acc),
            fmt2(row.completion),
        ]);
    }
    t.to_ascii()
}

/// Render Table 3 in the paper's layout (S|M|L plus overall, per corpus).
pub fn render_table3(r: &table3::Table3Result) -> String {
    let mut t = Table::new(vec![
        "Model", "Bbox", "Corpus", "S", "M", "L", "Overall",
    ])
    .numeric();
    for row in &r.rows {
        t.row(vec![
            row.model.clone(),
            row.source.clone(),
            row.corpus.clone(),
            fmt2(row.by_bucket[0]),
            fmt2(row.by_bucket[1]),
            fmt2(row.by_bucket[2]),
            fmt2(row.overall),
        ]);
    }
    t.to_ascii()
}

/// Render Table 4 in the paper's layout.
pub fn render_table4(r: &table4::Table4Result) -> String {
    let mut t = Table::new(vec!["Eval Type", "Precision", "Recall", "F1"]).numeric();
    for row in &r.rows {
        t.row(vec![
            row.eval_type.clone(),
            fmt2(row.precision()),
            fmt2(row.recall()),
            fmt2(row.f1()),
        ]);
    }
    t.to_ascii()
}

/// Whether the harness should run in reduced-size mode (CI smoke runs set
/// `ECLAIR_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("ECLAIR_FAST").map(|v| v == "1").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderers_produce_paper_shaped_tables() {
        let t1 = table1::run(table1::Table1Config {
            tasks: 3,
            ..Default::default()
        });
        let s = render_table1(&t1);
        assert!(s.contains("WD+KF+ACT"));
        assert!(s.contains("Ground truth"));
        let t4 = table4::run(table4::Table4Config {
            tasks: 3,
            ..Default::default()
        });
        let s = render_table4(&t4);
        assert!(s.contains("Integrity Constraint"));
        assert!(s.contains("Workflow Trajectory"));
    }

    #[test]
    fn fast_mode_reads_env() {
        // Can only assert it does not panic and returns a bool.
        let _ = fast_mode();
    }
}

//! # eclair-bench
//!
//! Benchmark harnesses regenerating every table and figure in the paper's
//! evaluation, plus Criterion micro-benchmarks over the substrates.
//!
//! Binaries (run with `cargo run --release -p eclair-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — SOP generation (Demonstrate) |
//! | `table2` | Table 2 — suggestion & completion (Execute) |
//! | `table3` | Table 3 — grounding accuracy (Execute) |
//! | `table4` | Table 4 — self-validation (Validate) |
//! | `fig2`   | Figure 2 — workflow-automatability taxonomy |
//! | `case_study` | Section 3 — RPA deployment dynamics vs ECLAIR |
//! | `repro_all` | everything above, with a paper-vs-measured summary |
//! | `fleet_bench` | fleet-mode worker sweep (1/2/4/8) over the 30-task suite → `BENCH_fleet.json` |
//! | `chaos_bench` | fault-rate × profile completion/recovery curves → `BENCH_chaos.json` |
//! | `crucible_bench` | 64-scenario simulation sweep under the oracle registry → `BENCH_crucible.json` |
//! | `hybrid_bench` | pure-FM vs compiled-bot crossover + drift-epoch amortization → `BENCH_hybrid.json` |
//! | `perf_bench` | cache-on vs `ECLAIR_NO_CACHE=1` over the 30-task suite; transparency proof + hit rates → `BENCH_perf.json` |
//! | `shared_bench` | fleet-wide shared percept cache vs per-instance baseline; cross-run hit rate + single-flight replicas → `BENCH_shared.json` |
//!
//! Every binary prints the paper's layout followed by a
//! [`eclair_metrics::PaperComparison`] block. Results are deterministic
//! under the default seed (`eclair_core::calibration::SEED`).

use eclair_core::experiments::{table1, table2, table3, table4};
use eclair_core::{Eclair, EclairConfig};
use eclair_fleet::FleetOutcome;
use eclair_fm::tokens::Pricing;
use eclair_metrics::table::fmt2;
use eclair_metrics::Table;
use eclair_obs::{MetricsRegistry, VT_LATENCY_BOUNDS_US};
use eclair_trace::{PhaseStats, RunSummary, TraceEvent};

/// Render Table 1 in the paper's layout.
pub fn render_table1(r: &table1::Table1Result) -> String {
    let mut t = Table::new(vec![
        "Method",
        "Missing",
        "Incorrect",
        "Total",
        "Precision",
        "Recall",
        "Correctness",
    ])
    .numeric();
    for row in &r.rows {
        t.row(vec![
            row.method.clone(),
            fmt2(row.missing),
            fmt2(row.incorrect),
            fmt2(row.total),
            fmt2(row.precision),
            fmt2(row.recall),
            fmt2(row.correctness),
        ]);
    }
    t.to_ascii()
}

/// Render Table 2 in the paper's layout.
pub fn render_table2(r: &table2::Table2Result) -> String {
    let mut t = Table::new(vec![
        "SOP",
        "Next Action Suggestion Acc.",
        "Overall Workflow Completion Acc.",
    ])
    .numeric();
    for row in &r.rows {
        t.row(vec![
            if row.with_sop { "yes" } else { "no" }.to_string(),
            fmt2(row.suggestion_acc),
            fmt2(row.completion),
        ]);
    }
    t.to_ascii()
}

/// Render Table 3 in the paper's layout (S|M|L plus overall, per corpus).
pub fn render_table3(r: &table3::Table3Result) -> String {
    let mut t = Table::new(vec!["Model", "Bbox", "Corpus", "S", "M", "L", "Overall"]).numeric();
    for row in &r.rows {
        t.row(vec![
            row.model.clone(),
            row.source.clone(),
            row.corpus.clone(),
            fmt2(row.by_bucket[0]),
            fmt2(row.by_bucket[1]),
            fmt2(row.by_bucket[2]),
            fmt2(row.overall),
        ]);
    }
    t.to_ascii()
}

/// Render Table 4 in the paper's layout.
pub fn render_table4(r: &table4::Table4Result) -> String {
    let mut t = Table::new(vec!["Eval Type", "Precision", "Recall", "F1"]).numeric();
    for row in &r.rows {
        t.row(vec![
            row.eval_type.clone(),
            fmt2(row.precision()),
            fmt2(row.recall()),
            fmt2(row.f1()),
        ]);
    }
    t.to_ascii()
}

/// Render a [`RunSummary`] as the per-phase observability rollup the
/// bench binaries print under each table.
pub fn render_trace_rollup(s: &RunSummary) -> String {
    let mut t = Table::new(vec![
        "Phase",
        "FM calls",
        "Prompt tok",
        "Compl tok",
        "Steps",
        "Grounded",
        "Retries",
        "Popups",
    ])
    .numeric();
    let phase_row = |t: &mut Table, name: &str, p: &PhaseStats| {
        t.row(vec![
            name.to_string(),
            p.fm_calls.to_string(),
            p.prompt_tokens.to_string(),
            p.completion_tokens.to_string(),
            p.steps.to_string(),
            format!("{}/{}", p.grounding_resolved, p.grounding_attempts),
            p.retries.to_string(),
            p.popup_escapes.to_string(),
        ]);
    };
    phase_row(&mut t, "Demonstrate", &s.demonstrate);
    phase_row(&mut t, "Execute", &s.execute);
    phase_row(&mut t, "Validate", &s.validate);
    phase_row(&mut t, "(outside)", &s.other);
    phase_row(&mut t, "Total", &s.total());
    let pricing = Pricing::gpt4_turbo();
    format!(
        "{}verdicts: {} pass / {} fail; cost @ GPT-4 Turbo list: ${:.4}\n",
        t.to_ascii(),
        s.verdicts_pass,
        s.verdicts_fail,
        s.cost_usd(pricing.prompt_per_m, pricing.completion_per_m),
    )
}

/// Result of [`automate_sweep`]: end-to-end completion stats plus the
/// merged trace of every run, exportable as one JSONL flight record.
pub struct SweepResult {
    /// Workflows completed successfully.
    pub wins: usize,
    /// Workflows attempted.
    pub total: usize,
    /// Trace rollup across the whole sweep.
    pub summary: RunSummary,
    /// The raw trace as JSON Lines (one event per line, seq-ordered).
    pub jsonl: String,
}

/// Run `Eclair::automate` over the first `n_tasks` catalog tasks with ONE
/// shared agent, so the trace's `seq` stays monotonic across the whole
/// sweep and the JSONL export is a single coherent flight record.
pub fn automate_sweep(n_tasks: usize, seed: u64) -> SweepResult {
    let tasks: Vec<_> = eclair_sites::all_tasks()
        .into_iter()
        .take(n_tasks.max(1))
        .collect();
    let mut agent = Eclair::new(EclairConfig {
        seed,
        ..Default::default()
    });
    let mut wins = 0usize;
    for task in &tasks {
        if agent.automate(task).success {
            wins += 1;
        }
    }
    SweepResult {
        wins,
        total: tasks.len(),
        summary: agent.model().trace().summary(),
        jsonl: agent.model().trace().to_jsonl(),
    }
}

/// Parse a `--trace-out <path>` argument pair from a raw argv slice.
pub fn trace_out_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Parse a `--metrics-out <path>` argument pair from a raw argv slice.
pub fn metrics_out_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Fold a [`RunSummary`] into `reg` under the standard counter names
/// every bench snapshot shares (`eclair-obs/v1` schema).
pub fn summary_metrics(reg: &mut MetricsRegistry, s: &RunSummary) {
    let t = s.total();
    reg.inc("fm.calls", t.fm_calls);
    reg.inc("fm.prompt_tokens", t.prompt_tokens);
    reg.inc("fm.completion_tokens", t.completion_tokens);
    reg.inc("exec.steps", t.steps);
    reg.inc("exec.grounding_attempts", t.grounding_attempts);
    reg.inc("exec.grounding_resolved", t.grounding_resolved);
    reg.inc("exec.retries", t.retries);
    reg.inc("exec.popup_escapes", t.popup_escapes);
    reg.inc("chaos.faults_injected", t.faults_injected);
    reg.inc("validate.verdicts_pass", s.verdicts_pass);
    reg.inc("validate.verdicts_fail", s.verdicts_fail);
    reg.inc("trace.events", s.events);
}

/// Build the standard metrics registry for a single-agent workload: the
/// run rollup plus the calling thread's perception/render perf counters.
pub fn summary_snapshot(s: &RunSummary) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    summary_metrics(&mut reg, s);
    reg.absorb_perf(&eclair_trace::perf::snapshot());
    reg
}

/// Build the standard metrics registry for a fleet outcome and its
/// merged flight record: run dispositions, the shared summary counters,
/// and virtual-time histograms per run and per span kind. Everything in
/// here is pure in the fleet seed, so the snapshot byte-reproduces
/// regardless of worker count or host.
pub fn fleet_metrics(outcome: &FleetOutcome, merged: &[TraceEvent]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    summary_metrics(&mut reg, &outcome.totals);
    reg.set_gauge("fleet.runs", outcome.records.len() as i64);
    reg.inc("fleet.succeeded", outcome.succeeded);
    reg.inc("fleet.failed", outcome.failed);
    reg.inc("fleet.cancelled", outcome.cancelled);
    reg.inc("fleet.retries", outcome.retries_total);
    for r in &outcome.records {
        reg.observe("vt.run_total_us", &VT_LATENCY_BOUNDS_US, r.vt_total_us);
    }
    for (kind, durations) in eclair_obs::span_inclusive_durations(merged) {
        let name = format!("vt.span.{kind}_us");
        for d in durations {
            reg.observe(&name, &VT_LATENCY_BOUNDS_US, d);
        }
    }
    reg
}

/// Write `reg`'s snapshot to the `--metrics-out` path if one was passed.
pub fn emit_metrics(reg: &MetricsRegistry) {
    if let Some(path) = metrics_out_arg() {
        std::fs::write(&path, reg.snapshot_json()).expect("write metrics snapshot");
        println!("metrics snapshot -> {}", path.display());
    }
}

/// Whether the harness should run in reduced-size mode (CI smoke runs set
/// `ECLAIR_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("ECLAIR_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderers_produce_paper_shaped_tables() {
        let t1 = table1::run(table1::Table1Config {
            tasks: 3,
            ..Default::default()
        });
        let s = render_table1(&t1);
        assert!(s.contains("WD+KF+ACT"));
        assert!(s.contains("Ground truth"));
        let t4 = table4::run(table4::Table4Config {
            tasks: 3,
            ..Default::default()
        });
        let s = render_table4(&t4);
        assert!(s.contains("Integrity Constraint"));
        assert!(s.contains("Workflow Trajectory"));
    }

    #[test]
    fn fast_mode_reads_env() {
        // Can only assert it does not panic and returns a bool.
        let _ = fast_mode();
    }

    #[test]
    fn trace_rollup_renders_all_phases() {
        let t1 = table1::run(table1::Table1Config {
            tasks: 2,
            ..Default::default()
        });
        let s = render_trace_rollup(&t1.trace);
        assert!(s.contains("Demonstrate"));
        assert!(s.contains("Execute"));
        assert!(s.contains("Total"));
        assert!(s.contains("cost @ GPT-4 Turbo"));
        assert!(t1.trace.fm_calls() > 0, "{s}");
    }

    #[test]
    fn summary_snapshot_rolls_up_under_standard_names() {
        let sweep = automate_sweep(2, 42);
        let reg = summary_snapshot(&sweep.summary);
        let snap = eclair_obs::parse_snapshot(&reg.snapshot_json()).expect("valid snapshot");
        assert!(snap.counters["fm.calls"] > 0);
        assert_eq!(snap.counters["trace.events"], sweep.summary.events);
        // Perf counters are absorbed under the cache.* / render.* names.
        assert!(snap.counters.keys().any(|k| k.starts_with("cache.")));
        // Same workload, fresh perf scope → byte-identical snapshot body
        // for the summary-derived counters.
        let again = summary_snapshot(&automate_sweep(2, 42).summary);
        let snap2 = eclair_obs::parse_snapshot(&again.snapshot_json()).expect("valid snapshot");
        assert_eq!(snap.counters["fm.calls"], snap2.counters["fm.calls"]);
    }

    #[test]
    fn automate_sweep_is_deterministic_and_round_trips() {
        let a = automate_sweep(2, 42);
        let b = automate_sweep(2, 42);
        // Same seed → byte-identical flight record.
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.wins, b.wins);
        // The JSONL round-trips through serde and re-rolls to the same
        // summary the live recorder produced.
        let events = eclair_trace::read_jsonl(&a.jsonl).expect("valid JSONL");
        assert_eq!(events.len() as u64, a.summary.events);
        let reread = eclair_trace::RunSummary::from_events(&events);
        assert_eq!(reread, a.summary);
    }
}

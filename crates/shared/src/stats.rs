//! Process-wide effectiveness counters for a [`crate::ShardedCache`].
//!
//! These are the cache's own books, kept in atomics so every worker
//! thread can bump them without touching the shard locks. They follow
//! the same quarantine rule as `eclair_fleet::FleetTiming`: read them
//! for dashboards and benches, never serialize them into a determinism
//! artifact — under concurrency the hit/coalesce split depends on
//! scheduling (the *values* never do). A sequential driver sees fully
//! deterministic numbers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters. All increments are `Relaxed`: the counts are advisory
/// telemetry with no ordering relationship to the cached values.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) evictions: AtomicU64,
}

impl CacheStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lookups served from the shared map.
    pub hits: u64,
    /// Lookups that computed the value (single-flight leaders included).
    pub misses: u64,
    /// Lookups that blocked on another thread's in-flight computation
    /// and shared its value without recomputing.
    pub coalesced: u64,
    /// Entries evicted to make room (FIFO per shard).
    pub evictions: u64,
}

impl StatsSnapshot {
    /// Hit rate in `[0, 1]` counting coalesced waits as hits (they did
    /// not recompute); 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let s = CacheStats::default();
        CacheStats::bump(&s.hits);
        CacheStats::bump(&s.hits);
        CacheStats::bump(&s.misses);
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.coalesced, 0);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(StatsSnapshot::default().hit_rate(), 0.0);
    }
}

//! The lock-striped map and its single-flight protocol.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};

use crate::stats::{CacheStats, StatsSnapshot};

/// How one [`ShardedCache::get_or_compute`] call was served. Callers
/// feed this into their own quarantined counters; the returned value is
/// identical in every case (the purity contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The key was already resident in its shard.
    Hit,
    /// This call computed the value (it was the single-flight leader, or
    /// nothing was in flight). `evicted` says whether inserting the
    /// result pushed out the shard's oldest entry.
    Computed {
        /// An older entry was dropped to make room.
        evicted: bool,
    },
    /// Another thread was already computing the key; this call blocked
    /// until the leader published and shared its value.
    Coalesced,
}

/// What a single-flight slot currently holds.
enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader published; waiters clone this.
    Ready(V),
    /// The leader's computation unwound (panicked) before publishing.
    /// One waiter is promoted to leader and recomputes.
    Abandoned,
}

/// One in-flight computation, shared between the leader and its waiters.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

/// Publishes on success; marks the flight abandoned if the leader's
/// compute unwinds, so waiters wake and recompute instead of blocking
/// forever.
struct FlightGuard<'a, K: Eq + Hash, V> {
    shard: &'a Mutex<Shard<K, V>>,
    key: K,
    flight: Arc<Flight<V>>,
    published: bool,
}

impl<K: Eq + Hash, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            self.shard.lock().unwrap().inflight.remove(&self.key);
            *self.flight.state.lock().unwrap() = FlightState::Abandoned;
            self.flight.ready.notify_all();
        }
    }
}

/// One stripe of the cache: resident values, their insertion order (the
/// FIFO eviction queue — deliberately the same pattern as the percept
/// memo, and deliberately *not* a wholesale `clear()` at capacity, the
/// hit-rate cliff this PR fixes in the GUI frame cache), and the keys
/// currently being computed.
struct Shard<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    inflight: HashMap<K, Arc<Flight<V>>>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            inflight: HashMap::new(),
        }
    }
}

/// A sharded, lock-striped cache with single-flight deduplication.
///
/// Keys pick their stripe through the std `DefaultHasher` (fixed-key
/// SipHash — deterministic across processes, so shard assignment and
/// therefore eviction behavior are reproducible). Each stripe holds at
/// most `cap_per_shard` values and evicts its oldest entry to admit a
/// new one. Contention is bounded by the stripe count: workers touching
/// different stripes never serialize.
///
/// ```
/// use eclair_shared::{Outcome, ShardedCache};
///
/// let cache: ShardedCache<u64, String> = ShardedCache::new(4, 64);
/// let (v, o) = cache.get_or_compute(7, || "percept".to_string());
/// assert_eq!((v.as_str(), o), ("percept", Outcome::Computed { evicted: false }));
/// let (v, o) = cache.get_or_compute(7, || unreachable!("deduped"));
/// assert_eq!((v.as_str(), o), ("percept", Outcome::Hit));
/// ```
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    cap_per_shard: usize,
    stats: CacheStats,
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("cap_per_shard", &self.cap_per_shard)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// Build a cache of `shards` stripes, each holding at most
    /// `cap_per_shard` values. Both are clamped to at least 1.
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::new()))
                .collect(),
            cap_per_shard: cap_per_shard.max(1),
            stats: CacheStats::default(),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look the key up without computing. Counts neither a hit nor a
    /// miss — this is the peek harnesses and tests use.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.shard_for(key).lock().unwrap().map.get(key).cloned()
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether no shard holds a value.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache's quarantined effectiveness counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Return the cached value for `key`, or compute it exactly once.
    ///
    /// The single-flight protocol: if the key is resident, clone it out
    /// (`Hit`). If another thread is mid-computation, block until it
    /// publishes and share its value (`Coalesced`) — the simulated FM is
    /// never asked twice for one in-flight key. Otherwise this call
    /// becomes the leader: it computes *outside* the shard lock, inserts
    /// the value (evicting the shard's oldest entry at capacity), wakes
    /// every waiter, and reports `Computed`.
    ///
    /// `compute` must be a pure function of `key` — that purity is what
    /// makes hit/coalesce/compute unobservable in the returned value. If
    /// the leader panics, the flight is marked abandoned and one waiter
    /// promotes itself to leader.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, Outcome) {
        let shard = self.shard_for(&key);
        let flight = {
            let mut guard = shard.lock().unwrap();
            if let Some(v) = guard.map.get(&key) {
                CacheStats::bump(&self.stats.hits);
                return (v.clone(), Outcome::Hit);
            }
            match guard.inflight.get(&key) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        ready: Condvar::new(),
                    });
                    guard.inflight.insert(key.clone(), Arc::clone(&flight));
                    drop(guard);
                    return self.lead(shard, key, flight, compute);
                }
            }
        };
        // Waiter path: block until the leader publishes or abandons.
        let flight = flight.expect("waiter path always holds a flight");
        let mut state = flight.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Pending => state = flight.ready.wait(state).unwrap(),
                FlightState::Ready(v) => {
                    CacheStats::bump(&self.stats.coalesced);
                    return (v.clone(), Outcome::Coalesced);
                }
                FlightState::Abandoned => {
                    // The leader unwound; recompute from scratch (the
                    // key may also have been claimed again by now).
                    drop(state);
                    return self.get_or_compute(key, compute);
                }
            }
        }
    }

    /// Leader path: compute outside the lock, publish, insert, wake.
    fn lead(
        &self,
        shard: &Mutex<Shard<K, V>>,
        key: K,
        flight: Arc<Flight<V>>,
        compute: impl FnOnce() -> V,
    ) -> (V, Outcome) {
        let mut cleanup = FlightGuard {
            shard,
            key: key.clone(),
            flight: Arc::clone(&flight),
            published: false,
        };
        let value = compute();
        let evicted = {
            let mut guard = shard.lock().unwrap();
            guard.inflight.remove(&key);
            let mut evicted = false;
            if guard.map.len() >= self.cap_per_shard {
                if let Some(oldest) = guard.order.pop_front() {
                    guard.map.remove(&oldest);
                    CacheStats::bump(&self.stats.evictions);
                    evicted = true;
                }
            }
            if guard.map.insert(key.clone(), value.clone()).is_none() {
                guard.order.push_back(key.clone());
            }
            evicted
        };
        *flight.state.lock().unwrap() = FlightState::Ready(value.clone());
        flight.ready.notify_all();
        cleanup.published = true;
        CacheStats::bump(&self.stats.misses);
        (value, Outcome::Computed { evicted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_compute() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 8);
        let (v, o) = c.get_or_compute(1, || 10);
        assert_eq!((v, o), (10, Outcome::Computed { evicted: false }));
        let (v, o) = c.get_or_compute(1, || panic!("must not recompute"));
        assert_eq!((v, o), (10, Outcome::Hit));
        assert_eq!(c.peek(&1), Some(10));
        assert_eq!(c.peek(&2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.coalesced, s.evictions), (1, 1, 0, 0));
    }

    #[test]
    fn per_shard_fifo_eviction_is_single_entry_not_a_cliff() {
        // One stripe, capacity 3: inserting a 4th key evicts exactly the
        // oldest — the other two stay resident (no wholesale clear).
        let c: ShardedCache<u64, u64> = ShardedCache::new(1, 3);
        for k in 0..3 {
            c.get_or_compute(k, || k * 10);
        }
        let (_, o) = c.get_or_compute(3, || 30);
        assert_eq!(o, Outcome::Computed { evicted: true });
        assert_eq!(c.len(), 3);
        assert_eq!(c.peek(&0), None, "oldest entry evicted");
        assert_eq!(c.peek(&1), Some(10));
        assert_eq!(c.peek(&2), Some(20));
        assert_eq!(c.peek(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        // Same keys, two cache instances: identical residency after the
        // same insertion sequence (DefaultHasher has fixed keys).
        let a: ShardedCache<u64, u64> = ShardedCache::new(8, 2);
        let b: ShardedCache<u64, u64> = ShardedCache::new(8, 2);
        for k in 0..64 {
            a.get_or_compute(k, || k);
            b.get_or_compute(k, || k);
        }
        for k in 0..64 {
            assert_eq!(a.peek(&k), b.peek(&k), "key {k}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn concurrent_same_key_coalesces_to_one_compute() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Barrier;
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 8);
        let computes = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    let (v, _) = c.get_or_compute(42, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually queue.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        420
                    });
                    assert_eq!(v, 420);
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "single-flight must dedupe concurrent computes of one key"
        );
        let s = c.stats();
        assert_eq!(s.hits + s.coalesced + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn distinct_keys_do_not_serialize_on_each_other() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(16, 8);
        std::thread::scope(|s| {
            for k in 0..16u64 {
                let c = &c;
                s.spawn(move || {
                    let (v, _) = c.get_or_compute(k, || k * k);
                    assert_eq!(v, k * k);
                });
            }
        });
        assert_eq!(c.len(), 16);
        assert_eq!(c.stats().misses, 16);
    }

    #[test]
    fn panicking_leader_abandons_the_flight_and_a_waiter_recovers() {
        use std::sync::Barrier;
        let c: ShardedCache<u64, u64> = ShardedCache::new(1, 8);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            let c = &c;
            let b = &barrier;
            let leader = s.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    c.get_or_compute(5, || {
                        b.wait(); // let the waiter enqueue behind this flight
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("compute failed");
                    })
                }));
                assert!(result.is_err());
            });
            let waiter = s.spawn(move || {
                b.wait();
                // By now the leader holds the flight; this call waits,
                // sees Abandoned, and recomputes successfully.
                let (v, _) = c.get_or_compute(5, || 55);
                assert_eq!(v, 55);
            });
            leader.join().unwrap();
            waiter.join().unwrap();
        });
        assert_eq!(c.peek(&5), Some(55));
    }

    #[test]
    fn values_are_pure_functions_of_keys_regardless_of_path() {
        // The transparency contract in miniature: hit, miss, and
        // coalesce all return the same value for the same key.
        let c: ShardedCache<(u64, u64), u64> = ShardedCache::new(2, 4);
        let f = |k: (u64, u64)| k.0.wrapping_mul(31).wrapping_add(k.1);
        let key = (3, 9);
        let (miss, _) = c.get_or_compute(key, || f(key));
        let (hit, _) = c.get_or_compute(key, || f(key));
        assert_eq!(miss, hit);
        assert_eq!(miss, f(key));
    }
}

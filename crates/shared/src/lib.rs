//! # eclair-shared
//!
//! Fleet-wide shared caches with single-flight deduplication.
//!
//! The perception memo introduced with the PR 5 caching layer is
//! per-model-instance: every fleet run instantiates a fresh `FmModel`,
//! so identical frames perceived by *different* runs always miss. Since
//! perception is a pure function of `(model seed, profile, frame hash)`,
//! a cache keyed on that full tuple can safely be shared by every worker
//! and every run of a fleet — and by *successive* fleet invocations,
//! which is where the cross-run redundancy actually lives (re-executed
//! suites, retry rescues, metamorphic ladders re-running the same seeds).
//!
//! [`ShardedCache`] is the substrate: a generic, lock-striped map with
//! FIFO per-shard eviction and a **single-flight** layer that dedupes
//! concurrent computations of the same key — when N workers ask for one
//! key at once, one computes while the rest block on a condvar and share
//! the leader's value. Values must be pure functions of their key (the
//! caller's contract); under that contract the cache is *transparent*:
//! whether a lookup hit, missed, or coalesced is unobservable in the
//! value returned.
//!
//! Effectiveness accounting lives in two quarantines, mirroring the
//! PR 5 invariant that cache effectiveness never reaches a serialized
//! artifact:
//!
//! * [`CacheStats`] — process-wide atomics on the cache itself
//!   (deterministic for sequential drivers, advisory under concurrency);
//! * the caller's thread-local counters (`eclair_trace::perf` for the
//!   perception cache), fed from the [`Outcome`] each lookup returns.
//!
//! The crate is dependency-free by design: it sits below `eclair-fm`
//! and `eclair-fleet` in the crate graph and knows nothing about
//! percepts, traces, or fleets.

mod cache;
mod stats;

pub use cache::{Outcome, ShardedCache};
pub use stats::{CacheStats, StatsSnapshot};

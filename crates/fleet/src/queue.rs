//! A bounded MPMC submission queue with blocking backpressure.
//!
//! The submitter thread pushes [`crate::RunSpec`]s in run-id order;
//! `push` blocks while the queue is at capacity, so a fleet fed faster
//! than its workers drain applies backpressure to the producer instead of
//! growing without bound. Workers block in `pop` until an item arrives or
//! the queue is closed and drained. Built on `Mutex` + two `Condvar`s —
//! no dependency beyond `std`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Counters the scheduler reports in its (non-deterministic) timing
/// section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// High-water mark of queued items.
    pub max_depth: usize,
    /// Number of `push` calls that had to wait for capacity (backpressure
    /// applications).
    pub push_waits: u64,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// The queue. Shared by reference across scoped threads.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueue, blocking while full. Returns the item back if the queue
    /// was closed before it could be accepted.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        if s.items.len() >= self.capacity && !s.closed {
            s.stats.push_waits += 1;
            while s.items.len() >= self.capacity && !s.closed {
                s = self.not_full.wait(s).unwrap();
            }
        }
        if s.closed {
            return Err(item);
        }
        s.items.push_back(item);
        let depth = s.items.len();
        s.stats.max_depth = s.stats.max_depth.max(depth);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while empty. `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap();
        }
    }

    /// Close the queue: pending items still drain, further pushes fail,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Backpressure counters so far.
    pub fn stats(&self) -> QueueStats {
        self.state.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stats().push_waits, 0);
        assert_eq!(q.stats().max_depth, 2);
    }

    #[test]
    fn push_blocks_until_a_worker_drains() {
        let q = BoundedQueue::new(1);
        let drained = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                while let Some(v) = q.pop() {
                    drained.fetch_add(v, Ordering::SeqCst);
                }
            });
            for v in 1..=50u64 {
                q.push(v).unwrap();
            }
            q.close();
        });
        assert_eq!(drained.load(Ordering::SeqCst), (1..=50).sum::<u64>());
        let stats = q.stats();
        assert!(stats.max_depth <= 1);
        assert!(
            stats.push_waits > 0,
            "a 1-slot queue under 50 pushes must have applied backpressure"
        );
    }

    #[test]
    fn close_wakes_a_blocked_pusher() {
        // Regression: a pusher parked in the not-full wait must observe
        // `closed` when it wakes, not re-park forever. Fill the queue,
        // block a second push on capacity, then close with no consumer —
        // the pusher must return promptly with its item.
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        std::thread::scope(|s| {
            let blocked = s.spawn(|| q.push(2));
            // The wait counter increments under the same lock the pusher
            // parks with, so seeing it means the pusher reached the wait.
            while q.stats().push_waits == 0 {
                std::thread::yield_now();
            }
            q.close();
            assert_eq!(
                blocked.join().unwrap(),
                Err(2),
                "a pusher blocked at close() must get its item back"
            );
        });
        assert_eq!(q.pop(), Some(1), "items accepted before close still drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_rejects_new_items_but_drains_old() {
        let q = BoundedQueue::new(2);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }
}

//! Retry policy: exponential backoff with seeded, subtractive jitter.
//!
//! Delays are measured in *simulated steps* (the fleet's virtual clock),
//! so they participate in p50/p95 latency accounting without introducing
//! wall-clock into any deterministic output. Jitter is drawn from an RNG
//! derived from the run seed, making the full schedule reproducible.
//!
//! Two invariants the property tests pin down:
//! * the nominal schedule is monotone non-decreasing and capped at
//!   `max_delay_steps`;
//! * jitter only ever *shortens* a delay (subtractive, at most
//!   `jitter * nominal`), so jittered delays stay within
//!   `[nominal * (1 - jitter), nominal]` — bounded and never below the
//!   fraction of the base the policy promises.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a fleet retries failed runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per run (1 = no retries).
    pub max_attempts: u32,
    /// Nominal delay before the first retry, in simulated steps.
    pub base_delay_steps: u64,
    /// Ceiling on any single delay.
    pub max_delay_steps: u64,
    /// Geometric growth factor between consecutive retries (>= 1).
    pub multiplier: f64,
    /// Subtractive jitter fraction in `[0, 1)`: the drawn delay lies in
    /// `[nominal * (1 - jitter), nominal]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_steps: 4,
            max_delay_steps: 64,
            multiplier: 2.0,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The nominal (pre-jitter) delay before retry `retry` (1-based):
    /// `base * multiplier^(retry-1)`, clamped to `max_delay_steps`.
    pub fn nominal_delay(&self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(62);
        let d = self.base_delay_steps as f64 * self.multiplier.max(1.0).powi(exp as i32);
        if !d.is_finite() || d >= self.max_delay_steps as f64 {
            self.max_delay_steps
        } else {
            (d.round() as u64).min(self.max_delay_steps)
        }
    }

    /// Draw the actual delay before retry `retry` from `rng`: the nominal
    /// delay minus up to `jitter * nominal` steps.
    pub fn jittered_delay(&self, retry: u32, rng: &mut StdRng) -> u64 {
        let nominal = self.nominal_delay(retry);
        let spread = (nominal as f64 * self.jitter.clamp(0.0, 1.0)).floor() as u64;
        if spread == 0 {
            return nominal;
        }
        nominal - rng.gen_range(0..=spread)
    }

    /// The full nominal schedule for this policy (`max_attempts - 1`
    /// entries, one per possible retry).
    pub fn nominal_schedule(&self) -> Vec<u64> {
        (1..self.max_attempts)
            .map(|r| self.nominal_delay(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nominal_schedule_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 7,
            base_delay_steps: 4,
            max_delay_steps: 20,
            multiplier: 2.0,
            jitter: 0.0,
        };
        assert_eq!(p.nominal_schedule(), vec![4, 8, 16, 20, 20, 20]);
    }

    #[test]
    fn jitter_is_subtractive_and_seeded() {
        let p = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for retry in 1..=4 {
            let d1 = p.jittered_delay(retry, &mut a);
            let d2 = p.jittered_delay(retry, &mut b);
            assert_eq!(d1, d2, "same seed, same schedule");
            let nominal = p.nominal_delay(retry);
            assert!(d1 <= nominal);
            assert!(d1 as f64 >= nominal as f64 * (1.0 - p.jitter) - 1.0);
        }
    }

    #[test]
    fn none_policy_never_retries() {
        assert!(RetryPolicy::none().nominal_schedule().is_empty());
    }
}

//! Executing one [`RunSpec`] to completion: attempt loop, backoff,
//! budget/deadline enforcement, cancellation.
//!
//! This function is the unit of work a fleet worker thread runs. It is
//! deliberately free of shared state: a fresh `FmModel` per attempt
//! (seeded from `(run_seed, attempt)`), a private backoff RNG (its own
//! stream of the run seed), and a private trace recorder per attempt —
//! so its outputs depend only on the spec, never on scheduling.

use std::sync::Arc;

use eclair_chaos::{ChaosSchedule, ChaosSession};
use eclair_core::execute::executor::{run_on_session, run_task, ExecConfig, RunResult};
use eclair_fm::tokens::Pricing;
use eclair_fm::{FmModel, FmProfile, SharedPerceptCache, TokenMeter};
use eclair_hybrid::{compile_task, run_hybrid_on_session};
use eclair_trace::{RunSummary, TraceEvent, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backoff::RetryPolicy;
use crate::report::{RunOutcome, RunRecord};
use crate::scheduler::CancelToken;
use crate::spec::{derive_seed, RunSpec};

/// Stream index reserved for the backoff-jitter RNG (attempt seeds use
/// streams `1..=max_attempts`).
const BACKOFF_STREAM: u64 = u64::MAX;

/// Virtual microseconds one simulated backoff step costs. Backoff waits
/// are accounted in abstract steps by [`RetryPolicy::jittered_delay`];
/// this converts them onto the same virtual-time axis the executor's
/// cost model uses (a step ≈ a 250 ms polling interval).
pub const BACKOFF_STEP_US: u64 = 250_000;

/// Pricing schedule for a preset (self-hosted rate for the GUI-tuned
/// model, GPT-4 Turbo list price otherwise).
pub fn pricing_for(profile: FmProfile) -> Pricing {
    match profile {
        FmProfile::CogAgent18b => Pricing::self_hosted_18b(),
        _ => Pricing::gpt4_turbo(),
    }
}

/// Execute one spec: up to `policy.max_attempts` attempts with jittered
/// exponential backoff between them, a cumulative token budget, a
/// per-attempt step deadline, and a cancellation check before each
/// attempt. Returns the deterministic record plus the run's trace events
/// (all attempts, in order).
pub fn execute_spec(
    spec: &RunSpec,
    policy: &RetryPolicy,
    cancel: &CancelToken,
) -> (RunRecord, Vec<TraceEvent>) {
    execute_spec_shared(spec, policy, cancel, None)
}

/// As [`execute_spec`], with a fleet-wide shared percept cache attached
/// to every model the run instantiates (initial attempts *and* hybrid
/// rescues — both must see the same cache, or a rescue would recompute
/// percepts its bot attempt already published). The handle is ignored
/// when the spec opts out via `use_shared: false`; caching stays
/// transparent either way, so the record and events are byte-identical
/// with and without the handle.
pub fn execute_spec_shared(
    spec: &RunSpec,
    policy: &RetryPolicy,
    cancel: &CancelToken,
    shared: Option<&Arc<SharedPerceptCache>>,
) -> (RunRecord, Vec<TraceEvent>) {
    let shared = if spec.use_shared { shared } else { None };
    let mut summary = RunSummary::default();
    let mut tokens = TokenMeter::default();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut jitter_rng = StdRng::seed_from_u64(derive_seed(spec.seed, BACKOFF_STREAM));
    let max_attempts = policy.max_attempts.max(1);

    let mut cfg = spec.config.clone();
    if let Some(d) = spec.deadline_steps {
        cfg.max_steps = cfg.max_steps.min(d);
    }

    let mut attempts = 0u32;
    let mut exec_steps = 0u64;
    let mut vt_exec_us = 0u64;
    let mut faults_injected = 0u64;
    let mut backoff_steps = 0u64;
    let mut outcome = RunOutcome::Cancelled;
    let mut last: Option<RunResult> = None;

    for attempt in 1..=max_attempts {
        if cancel.is_cancelled() {
            break;
        }
        attempts = attempt;
        let mut model = spec
            .profile
            .instantiate(derive_seed(spec.seed, attempt as u64));
        if let Some(cache) = shared {
            model.attach_shared(Arc::clone(cache));
        }
        // Re-seat the virtual clock on the *run* identity: latency draws
        // are pure in `(run seed, run_id, step)`, shared by all attempts,
        // so a retried step replays its attempt's latency exactly.
        model
            .trace_mut()
            .set_clock(VirtualClock::new(spec.seed, spec.run_id));
        let (mut result, ran_pure) = match &spec.hybrid {
            Some(_) => hybrid_attempt(spec, &cfg, &mut model, &mut faults_injected),
            None => (
                pure_attempt(spec, &cfg, &mut model, &mut faults_injected),
                true,
            ),
        };
        if !result.success && !ran_pure && spec.hybrid.as_ref().is_some_and(|p| p.full_fm_fallback)
        {
            // Transparency rescue: bank the hybrid attempt's books, then
            // run a pure-FM attempt on a *fresh* model at the same
            // attempt seed and a re-seated clock — byte-identical to the
            // attempt a hybrid-free spec would have executed, so hybrid
            // mode can only add successes, never remove them.
            exec_steps += result.actions_attempted as u64;
            vt_exec_us += model.trace().clock().now_us();
            summary.merge(&model.trace().summary());
            tokens.merge(model.meter());
            events.extend(model.trace_mut().take_events());
            model = spec
                .profile
                .instantiate(derive_seed(spec.seed, attempt as u64));
            if let Some(cache) = shared {
                model.attach_shared(Arc::clone(cache));
            }
            model
                .trace_mut()
                .set_clock(VirtualClock::new(spec.seed, spec.run_id));
            model
                .trace_mut()
                .note("hybrid: bot attempt failed; rescuing with a full FM run");
            result = pure_attempt(spec, &cfg, &mut model, &mut faults_injected);
        }
        exec_steps += result.actions_attempted as u64;
        vt_exec_us += model.trace().clock().now_us();
        summary.merge(&model.trace().summary());
        tokens.merge(model.meter());
        events.extend(model.trace_mut().take_events());

        let over_budget = spec.token_budget.is_some_and(|b| tokens.total_tokens() > b);
        let deadline_hit = spec
            .deadline_steps
            .is_some_and(|d| result.actions_attempted >= d);
        let success = result.success;
        last = Some(result);

        if success {
            outcome = RunOutcome::Success;
            break;
        }
        if over_budget {
            outcome = RunOutcome::BudgetExceeded;
            break;
        }
        if attempt == max_attempts {
            outcome = if deadline_hit {
                RunOutcome::DeadlineExceeded
            } else {
                RunOutcome::Failed
            };
        } else {
            backoff_steps += policy.jittered_delay(attempt, &mut jitter_rng);
        }
    }

    let result = last.unwrap_or(RunResult {
        success: false,
        actions_attempted: 0,
        failures: 0,
        recoveries: 0,
        log: vec![],
    });
    let cost_usd = tokens.cost_usd(pricing_for(spec.profile));
    let record = RunRecord {
        run_id: spec.run_id,
        task_id: spec.task.id.clone(),
        profile: spec.profile,
        seed: spec.seed,
        attempts,
        retries: attempts.saturating_sub(1),
        outcome,
        result,
        summary,
        tokens,
        cost_usd,
        faults_injected,
        exec_steps,
        backoff_steps,
        latency_steps: exec_steps + backoff_steps,
        vt_exec_us,
        vt_backoff_us: backoff_steps * BACKOFF_STEP_US,
        vt_total_us: vt_exec_us + backoff_steps * BACKOFF_STEP_US,
    };
    (record, events)
}

/// One pure-FM attempt: the executor against the task's fixture, wrapped
/// in a chaos injector when the spec carries a fault profile. Retrying an
/// attempt replays the identical fault sequence — the schedule is pure in
/// `(chaos_seed, run_id, step)`.
fn pure_attempt(
    spec: &RunSpec,
    cfg: &ExecConfig,
    model: &mut FmModel,
    faults_injected: &mut u64,
) -> RunResult {
    match &spec.chaos {
        Some(profile) => {
            let schedule = ChaosSchedule::new(profile.clone(), spec.run_id);
            let mut surface = ChaosSession::new(spec.task.site.app(), schedule);
            let mut r = run_on_session(model, &mut surface, &spec.task.intent, cfg);
            r.success = spec.task.success.evaluate(surface.inner());
            *faults_injected += surface.faults_injected();
            r
        }
        None => run_task(model, &spec.task, cfg),
    }
}

/// One hybrid attempt: compile the task's validated trace into a bot and
/// run it with step-scoped FM fallback, under the same chaos wrapping a
/// pure attempt would get. Returns `(result, ran_pure)` — `ran_pure` is
/// true when compilation failed and the attempt already fell through to
/// a full FM run, so the caller must not rescue it a second time.
fn hybrid_attempt(
    spec: &RunSpec,
    cfg: &ExecConfig,
    model: &mut FmModel,
    faults_injected: &mut u64,
) -> (RunResult, bool) {
    let mut script = match compile_task(&spec.task, model.trace_mut()) {
        Ok(s) => s,
        Err(e) => {
            model
                .trace_mut()
                .note(format!("hybrid: compile failed ({e}); running pure FM"));
            return (pure_attempt(spec, cfg, model, faults_injected), true);
        }
    };
    let r = match &spec.chaos {
        Some(profile) => {
            let schedule = ChaosSchedule::new(profile.clone(), spec.run_id);
            let mut surface = ChaosSession::new(spec.task.site.app(), schedule);
            let report = run_hybrid_on_session(model, &mut surface, &mut script, cfg);
            let mut r = report.result;
            r.success = spec.task.success.evaluate(surface.inner());
            *faults_injected += surface.faults_injected();
            r
        }
        None => {
            let mut session = spec.task.launch();
            let report = run_hybrid_on_session(model, &mut session, &mut script, cfg);
            let mut r = report.result;
            r.success = spec.task.success.evaluate(&session);
            r
        }
    };
    (r, false)
}

/// The record a spec gets when the fleet is cancelled before any attempt.
pub fn cancelled_record(spec: &RunSpec) -> (RunRecord, Vec<TraceEvent>) {
    let record = RunRecord {
        run_id: spec.run_id,
        task_id: spec.task.id.clone(),
        profile: spec.profile,
        seed: spec.seed,
        attempts: 0,
        retries: 0,
        outcome: RunOutcome::Cancelled,
        result: RunResult {
            success: false,
            actions_attempted: 0,
            failures: 0,
            recoveries: 0,
            log: vec![],
        },
        summary: RunSummary::default(),
        tokens: TokenMeter::default(),
        cost_usd: 0.0,
        faults_injected: 0,
        exec_steps: 0,
        backoff_steps: 0,
        latency_steps: 0,
        vt_exec_us: 0,
        vt_backoff_us: 0,
        vt_total_us: 0,
    };
    (record, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::all_tasks;

    fn spec(run_id: u64) -> RunSpec {
        let task = all_tasks().remove(2); // close-issue: short and robust
        RunSpec::for_task(11, run_id, task, FmProfile::Oracle)
    }

    #[test]
    fn oracle_succeeds_first_attempt() {
        let (rec, events) = execute_spec(&spec(0), &RetryPolicy::default(), &CancelToken::new());
        assert_eq!(rec.outcome, RunOutcome::Success);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.retries, 0);
        assert_eq!(rec.backoff_steps, 0);
        assert!(rec.result.success);
        assert!(!events.is_empty());
        assert_eq!(rec.summary.fm_calls(), rec.tokens.calls);
        assert!(rec.cost_usd > 0.0);
        assert!(rec.vt_exec_us > 0, "execution must consume virtual time");
        assert_eq!(rec.vt_backoff_us, 0);
        assert_eq!(rec.vt_total_us, rec.vt_exec_us);
        // The final event's stamp is the clock's final reading.
        assert_eq!(events.last().unwrap().vt, rec.vt_exec_us);
    }

    #[test]
    fn token_budget_stops_retrying() {
        let s = spec(1).with_token_budget(1); // everything blows this budget
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut s2 = s.clone();
        // Make the run unable to succeed so the budget is what stops it:
        // an impossible success predicate.
        s2.task.success = eclair_sites::SuccessCheck::probes(&[("never", "true")]);
        let (rec, _) = execute_spec(&s2, &policy, &CancelToken::new());
        assert_eq!(rec.outcome, RunOutcome::BudgetExceeded);
        assert_eq!(rec.attempts, 1, "budget exhaustion must stop retries");
    }

    #[test]
    fn failed_runs_retry_and_accumulate_backoff() {
        let mut s = spec(2);
        s.task.success = eclair_sites::SuccessCheck::probes(&[("never", "true")]);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_steps: 4,
            max_delay_steps: 64,
            multiplier: 2.0,
            jitter: 0.0,
        };
        let (rec, _) = execute_spec(&s, &policy, &CancelToken::new());
        assert_eq!(rec.outcome, RunOutcome::Failed);
        assert_eq!(rec.attempts, 3);
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.backoff_steps, 4 + 8);
        assert_eq!(rec.latency_steps, rec.exec_steps + 12);
        assert_eq!(rec.vt_backoff_us, 12 * BACKOFF_STEP_US);
        assert_eq!(rec.vt_total_us, rec.vt_exec_us + 12 * BACKOFF_STEP_US);
    }

    #[test]
    fn deadline_is_enforced_and_reported() {
        let mut s = spec(3).with_deadline_steps(1);
        s.task.success = eclair_sites::SuccessCheck::probes(&[("never", "true")]);
        let (rec, _) = execute_spec(&s, &RetryPolicy::none(), &CancelToken::new());
        assert_eq!(rec.outcome, RunOutcome::DeadlineExceeded);
        assert!(rec.result.actions_attempted <= 1);
    }

    #[test]
    fn cancelled_before_start_yields_cancelled_record() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let (rec, events) = execute_spec(&spec(4), &RetryPolicy::default(), &cancel);
        assert_eq!(rec.outcome, RunOutcome::Cancelled);
        assert_eq!(rec.attempts, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn chaos_attempts_inject_faults_and_stay_deterministic() {
        use eclair_chaos::ChaosProfile;
        let s = spec(6).with_chaos(ChaosProfile::full(17, 1.0));
        let p = RetryPolicy::default();
        let (rec_a, ev_a) = execute_spec(&s, &p, &CancelToken::new());
        let (rec_b, ev_b) = execute_spec(&s, &p, &CancelToken::new());
        assert_eq!(rec_a, rec_b, "chaos runs are pure functions of the spec");
        assert_eq!(ev_a, ev_b);
        assert!(
            rec_a.faults_injected > 0,
            "a fault rate of 1.0 must inject at every step"
        );
        assert!(
            ev_a.iter()
                .any(|e| matches!(e.kind, eclair_trace::EventKind::FaultInjected { .. })),
            "injections must surface in the trace"
        );
    }

    #[test]
    fn chaos_free_runs_report_zero_faults() {
        let (rec, _) = execute_spec(&spec(7), &RetryPolicy::default(), &CancelToken::new());
        assert_eq!(rec.faults_injected, 0);
    }

    #[test]
    fn hybrid_runs_succeed_at_a_fraction_of_pure_fm_tokens() {
        use eclair_hybrid::HybridPolicy;
        let s = spec(8);
        let (pure, _) = execute_spec(&s, &RetryPolicy::default(), &CancelToken::new());
        let h = s.with_hybrid(HybridPolicy::default());
        let (hybrid, _) = execute_spec(&h, &RetryPolicy::default(), &CancelToken::new());
        assert_eq!(pure.outcome, RunOutcome::Success);
        assert_eq!(hybrid.outcome, RunOutcome::Success);
        assert_eq!(
            hybrid.tokens.total_tokens(),
            0,
            "a driftless bot run costs zero tokens"
        );
        assert!(pure.tokens.total_tokens() > 0);
    }

    #[test]
    fn uncompilable_tasks_fall_through_to_one_pure_attempt() {
        use eclair_hybrid::HybridPolicy;
        // An impossible success predicate also fails the compile gate
        // (the replayed gold trace cannot demonstrate the outcome), so
        // the attempt runs pure FM exactly once — no double rescue.
        let mut s = spec(9);
        s.task.success = eclair_sites::SuccessCheck::probes(&[("never", "true")]);
        let policy = RetryPolicy::none();
        let (pure, _) = execute_spec(&s, &policy, &CancelToken::new());
        let h = s.with_hybrid(HybridPolicy::default());
        let (hybrid, _) = execute_spec(&h, &policy, &CancelToken::new());
        assert_eq!(pure.outcome, hybrid.outcome);
        assert_eq!(
            pure.result.actions_attempted, hybrid.result.actions_attempted,
            "the fallthrough attempt is the exact pure attempt"
        );
        assert_eq!(
            pure.exec_steps, hybrid.exec_steps,
            "compile failure must not double-run the attempt"
        );
        assert_eq!(pure.tokens.total_tokens(), hybrid.tokens.total_tokens());
    }

    #[test]
    fn hybrid_rescue_matches_the_pure_outcome_when_the_bot_cannot_win() {
        use eclair_hybrid::HybridPolicy;
        // A step deadline shorter than the script: the bot attempt runs
        // out, and the rescue replays the exact pure attempt.
        let s = spec(12).with_deadline_steps(1);
        let policy = RetryPolicy::none();
        let (pure, _) = execute_spec(&s, &policy, &CancelToken::new());
        let h = s.with_hybrid(HybridPolicy::default());
        let (hybrid, _) = execute_spec(&h, &policy, &CancelToken::new());
        assert_eq!(pure.outcome, hybrid.outcome);
        assert_eq!(
            pure.result.actions_attempted, hybrid.result.actions_attempted,
            "the rescue attempt is the exact pure attempt"
        );
        assert!(
            hybrid.exec_steps > pure.exec_steps,
            "hybrid books include the banked bot attempt"
        );
        assert!(
            hybrid.tokens.total_tokens() >= pure.tokens.total_tokens(),
            "rescue includes the full pure attempt"
        );
    }

    #[test]
    fn hybrid_execution_is_a_pure_function_of_the_spec() {
        use eclair_chaos::ChaosProfile;
        use eclair_hybrid::HybridPolicy;
        let s = spec(10)
            .with_chaos(ChaosProfile::full(23, 0.5))
            .with_hybrid(HybridPolicy::default());
        let p = RetryPolicy::default();
        let a = execute_spec(&s, &p, &CancelToken::new());
        let b = execute_spec(&s, &p, &CancelToken::new());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn execution_is_a_pure_function_of_the_spec() {
        let s = spec(5);
        let p = RetryPolicy::default();
        let a = execute_spec(&s, &p, &CancelToken::new());
        let b = execute_spec(&s, &p, &CancelToken::new());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}

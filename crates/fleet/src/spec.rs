//! Per-run specifications and deterministic seed derivation.
//!
//! The fleet's headline guarantee — concurrency changes wall-clock, never
//! outcomes — rests on one rule: *everything stochastic about a run is
//! derived from `(fleet_seed, run_id)` before the run is scheduled*. A
//! worker thread receives a fully self-contained [`RunSpec`] and touches
//! no shared mutable state, so which worker executes which run (and in
//! what order) cannot influence any result.

use eclair_chaos::ChaosProfile;
use eclair_core::execute::executor::ExecConfig;
use eclair_fm::FmProfile;
use eclair_hybrid::HybridPolicy;
use eclair_sites::TaskSpec;

/// SplitMix64-style finalizer: mixes a parent seed and a stream index
/// into an independent child seed. Used for `(fleet_seed, run_id)` →
/// run seed, and `(run_seed, attempt)` → attempt seed.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one run needs, owned and `Send`: the task, the model
/// preset, the derived seed, and the run-local budgets. Workers expand
/// the profile into a fresh `FmModel` at run start — no model state is
/// shared across runs.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Position in the fleet's submission order; also the merge key for
    /// traces and reports.
    pub run_id: u64,
    /// The workflow to execute.
    pub task: TaskSpec,
    /// Model preset expanded per attempt (cheap: profile + RNG seed).
    pub profile: FmProfile,
    /// Run seed, normally `derive_seed(fleet_seed, run_id)`. Attempt `k`
    /// runs on `derive_seed(seed, k)`; backoff jitter draws from its own
    /// stream of this seed.
    pub seed: u64,
    /// Hard cap on total tokens across all attempts; exceeding it fails
    /// the run (`RunOutcome::BudgetExceeded`) and stops retrying.
    pub token_budget: Option<u64>,
    /// Per-attempt deadline in simulated steps (caps `config.max_steps`);
    /// a run that exhausts it without succeeding reports
    /// `RunOutcome::DeadlineExceeded`.
    pub deadline_steps: Option<usize>,
    /// Executor configuration for each attempt.
    pub config: ExecConfig,
    /// Optional fault-injection profile. When set, every attempt runs
    /// against a `ChaosSession` whose schedule is
    /// `ChaosSchedule::new(profile, run_id)` — pure in
    /// `(chaos_seed, run_id, step)`, so the fault environment is as
    /// deterministic as the model noise and independent of it.
    pub chaos: Option<ChaosProfile>,
    /// Whether this run consults the fleet-wide shared percept cache
    /// (`eclair_fm::SharedPerceptCache`). On by default; like the local
    /// caches it is transparent — records and traces are byte-identical
    /// either way — and `ECLAIR_NO_CACHE=1` still bypasses it entirely.
    pub use_shared: bool,
    /// Optional hybrid execution policy. When set, each attempt first
    /// compiles the task's validated trace into a selector bot and runs
    /// it with step-scoped FM fallback (`eclair-hybrid`); with
    /// `full_fm_fallback` on, a still-failing attempt is rescued by a
    /// pure-FM run at the same attempt seed — byte-identical to what the
    /// fleet would have executed without a bot. Chaos schedules, the
    /// virtual clock, token budgets, and the metrics registry all thread
    /// through unchanged.
    pub hybrid: Option<HybridPolicy>,
}

impl RunSpec {
    /// The standard spec for a task: gold SOP, budgeted step count, seed
    /// derived from `(fleet_seed, run_id)`.
    pub fn for_task(fleet_seed: u64, run_id: u64, task: TaskSpec, profile: FmProfile) -> Self {
        let config = ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
        Self {
            run_id,
            seed: derive_seed(fleet_seed, run_id),
            task,
            profile,
            token_budget: None,
            deadline_steps: None,
            config,
            use_shared: true,
            chaos: None,
            hybrid: None,
        }
    }

    /// Set a token budget.
    pub fn with_token_budget(mut self, budget: u64) -> Self {
        self.token_budget = Some(budget);
        self
    }

    /// Set a per-attempt step deadline.
    pub fn with_deadline_steps(mut self, steps: usize) -> Self {
        self.deadline_steps = Some(steps);
        self
    }

    /// Replace the executor configuration.
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a fault-injection profile; attempts will run under chaos.
    pub fn with_chaos(mut self, chaos: ChaosProfile) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Run attempts through the compiled bot + FM-fallback pipeline.
    pub fn with_hybrid(mut self, policy: HybridPolicy) -> Self {
        self.hybrid = Some(policy);
        self
    }

    /// Toggle the frame cache and perception memo for every attempt of
    /// this run. Caching is transparent (identical records and traces
    /// either way), so this only changes wall-clock; `ECLAIR_NO_CACHE=1`
    /// still force-disables both at execution time.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.config.use_cache = on;
        self
    }

    /// Toggle the fleet-wide shared percept cache for this run. Also
    /// transparent: a shared hit re-accounts the exact tokens the
    /// recompute would have, so flipping this changes only wall-clock
    /// and the quarantined `shared.*` perf counters.
    pub fn with_shared(mut self, on: bool) -> Self {
        self.use_shared = on;
        self
    }
}

/// Build one standard spec per task, run ids following task order.
pub fn specs_for_tasks(fleet_seed: u64, tasks: Vec<TaskSpec>, profile: FmProfile) -> Vec<RunSpec> {
    tasks
        .into_iter()
        .enumerate()
        .map(|(i, t)| RunSpec::for_task(fleet_seed, i as u64, t, profile))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::all_tasks;

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0), "derivation is pure");
    }

    #[test]
    fn specs_inherit_ids_and_distinct_seeds() {
        let specs = specs_for_tasks(
            7,
            all_tasks().into_iter().take(4).collect(),
            FmProfile::Gpt4V,
        );
        assert_eq!(specs.len(), 4);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.run_id, i as u64);
            assert_eq!(s.seed, derive_seed(7, i as u64));
        }
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn cache_is_on_by_default_and_toggles_via_builder() {
        let task = all_tasks().remove(0);
        let spec = RunSpec::for_task(1, 0, task, FmProfile::Oracle);
        assert!(spec.config.use_cache);
        assert!(spec.use_shared, "shared layer is on by default");
        let spec = spec.with_cache(false).with_shared(false);
        assert!(!spec.config.use_cache);
        assert!(!spec.use_shared);
    }

    #[test]
    fn chaos_profile_is_off_by_default_and_attaches_via_builder() {
        let task = all_tasks().remove(0);
        let spec = RunSpec::for_task(1, 0, task, FmProfile::Oracle);
        assert!(spec.chaos.is_none());
        let profile = ChaosProfile::full(99, 0.25);
        let spec = spec.with_chaos(profile.clone());
        assert_eq!(spec.chaos, Some(profile));
    }
}

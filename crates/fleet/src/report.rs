//! Per-run records and the fleet-level rollup.
//!
//! Everything in [`RunRecord`] and [`FleetOutcome`] is deterministic from
//! the specs — these types serialize and are what the determinism CI job
//! byte-compares. Wall-clock measurements live exclusively in
//! [`FleetTiming`], which never serializes.

use eclair_core::execute::executor::RunResult;
use eclair_fm::{FmProfile, TokenMeter};
use eclair_trace::{merge_event_streams, merged_jsonl, MergeError, RunSummary, TraceEvent};
use serde::{Deserialize, Serialize};

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The task's success predicate held after some attempt.
    Success,
    /// All attempts exhausted without success.
    Failed,
    /// The cumulative token budget was exceeded; retrying stopped.
    BudgetExceeded,
    /// The final attempt hit the per-attempt step deadline.
    DeadlineExceeded,
    /// The fleet was cancelled before this run finished.
    Cancelled,
}

/// The deterministic record of one run (all attempts included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Merge key; equals the spec's `run_id`.
    pub run_id: u64,
    /// The task the run executed.
    pub task_id: String,
    /// Model preset the run used.
    pub profile: FmProfile,
    /// The run seed (attempt seeds derive from it).
    pub seed: u64,
    /// Attempts actually made (1 = first try succeeded or no retries).
    pub attempts: u32,
    /// Scheduler-level retries (`attempts - 1`).
    pub retries: u32,
    /// Final disposition.
    pub outcome: RunOutcome,
    /// The final attempt's executor result (`failures`/`recoveries` are
    /// the in-run counters; `retries` above is the fleet's own count).
    pub result: RunResult,
    /// Trace rollup merged across all attempts.
    pub summary: RunSummary,
    /// Token usage across all attempts.
    pub tokens: TokenMeter,
    /// Dollar cost of `tokens` under the profile's pricing.
    pub cost_usd: f64,
    /// Faults the chaos layer injected across all attempts (0 when the
    /// spec carries no chaos profile).
    pub faults_injected: u64,
    /// Simulated steps spent executing (all attempts).
    pub exec_steps: u64,
    /// Simulated steps spent waiting in backoff between attempts.
    pub backoff_steps: u64,
    /// Total simulated latency: `exec_steps + backoff_steps`.
    pub latency_steps: u64,
    /// Virtual-clock microseconds spent executing (all attempts; see
    /// `eclair_trace::VirtualClock`). Pure in the spec, identical across
    /// worker counts — safe to serialize.
    pub vt_exec_us: u64,
    /// Virtual-clock microseconds spent in backoff waits between
    /// attempts (`backoff_steps · BACKOFF_STEP_US`).
    pub vt_backoff_us: u64,
    /// Total virtual latency: `vt_exec_us + vt_backoff_us`.
    pub vt_total_us: u64,
}

/// Latency distribution over simulated steps (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Compute from unordered samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: u64| sorted[((p * sorted.len() as u64).div_ceil(100) as usize).max(1) - 1];
        Self {
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
            max: *sorted.last().unwrap(),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }
}

/// Virtual makespan of scheduling `durations` (in run-id order) onto
/// `workers` identical workers: greedy list scheduling, each run placed
/// on the earliest-free worker (ties broken by lowest worker index).
/// This mirrors the fleet's actual work-stealing order closely enough to
/// make speedup curves meaningful, while being a pure function of the
/// per-run virtual durations — so the curve is identical on every host.
pub fn virtual_makespan(durations: &[u64], workers: usize) -> u64 {
    let workers = workers.max(1);
    let mut free_at = vec![0u64; workers.min(durations.len().max(1))];
    for &d in durations {
        let (idx, _) = free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one worker");
        free_at[idx] += d;
    }
    free_at.into_iter().max().unwrap_or(0)
}

/// The deterministic fleet-level rollup: per-run records in run-id order
/// plus aggregates derived from them. Byte-identical across worker
/// counts for the same specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// The seed every run id was derived from.
    pub fleet_seed: u64,
    /// Runs that ended `Success`.
    pub succeeded: u64,
    /// Runs that ended `Failed`, `BudgetExceeded`, or `DeadlineExceeded`.
    pub failed: u64,
    /// Runs cancelled before finishing.
    pub cancelled: u64,
    /// Scheduler-level retries summed over runs.
    pub retries_total: u64,
    /// Latency distribution over `latency_steps`.
    pub latency_steps: LatencyStats,
    /// Latency distribution over per-run `vt_total_us` (virtual-clock
    /// microseconds; meaningful across hosts and worker counts).
    pub latency_vt_us: LatencyStats,
    /// Trace rollup over every run and attempt.
    pub totals: RunSummary,
    /// Tokens over every run and attempt.
    pub tokens: TokenMeter,
    /// Dollar cost over every run.
    pub cost_usd: f64,
    /// One record per run, sorted by `run_id`.
    pub records: Vec<RunRecord>,
}

impl FleetOutcome {
    /// Aggregate records (must already be sorted by `run_id`).
    pub fn from_records(fleet_seed: u64, records: Vec<RunRecord>) -> Self {
        let mut totals = RunSummary::default();
        let mut tokens = TokenMeter::default();
        let (mut succeeded, mut failed, mut cancelled) = (0u64, 0u64, 0u64);
        let mut retries_total = 0u64;
        let mut cost_usd = 0.0;
        let mut latencies = Vec::with_capacity(records.len());
        let mut vt_latencies = Vec::with_capacity(records.len());
        for r in &records {
            totals.merge(&r.summary);
            tokens.merge(&r.tokens);
            retries_total += r.retries as u64;
            cost_usd += r.cost_usd;
            latencies.push(r.latency_steps);
            vt_latencies.push(r.vt_total_us);
            match r.outcome {
                RunOutcome::Success => succeeded += 1,
                RunOutcome::Cancelled => cancelled += 1,
                _ => failed += 1,
            }
        }
        Self {
            fleet_seed,
            succeeded,
            failed,
            cancelled,
            retries_total,
            latency_steps: LatencyStats::from_samples(&latencies),
            latency_vt_us: LatencyStats::from_samples(&vt_latencies),
            totals,
            tokens,
            cost_usd,
            records,
        }
    }

    /// Serialize the deterministic section as JSON (the byte-comparable
    /// artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fleet outcome serializes")
    }

    /// The record for `run_id`, if present (records are run-id sorted, so
    /// this is a binary search).
    pub fn record(&self, run_id: u64) -> Option<&RunRecord> {
        self.records
            .binary_search_by_key(&run_id, |r| r.run_id)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Fraction of runs that succeeded.
    pub fn completion_rate(&self) -> f64 {
        self.succeeded as f64 / self.records.len().max(1) as f64
    }

    /// In-run action failures summed over runs (final attempts).
    pub fn failures_total(&self) -> u64 {
        self.records.iter().map(|r| r.result.failures as u64).sum()
    }

    /// In-run recoveries summed over runs (final attempts).
    pub fn recoveries_total(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.result.recoveries as u64)
            .sum()
    }

    /// Chaos faults injected summed over runs (all attempts).
    pub fn faults_injected_total(&self) -> u64 {
        self.records.iter().map(|r| r.faults_injected).sum()
    }
}

/// Wall-clock measurements. Deliberately not serializable so they can
/// never leak into a determinism comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetTiming {
    /// Worker threads the fleet ran on.
    pub workers: usize,
    /// End-to-end wall time, nanoseconds.
    pub wall_nanos: u128,
    /// Completed runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Queue high-water mark.
    pub queue_max_depth: usize,
    /// Submissions that blocked on a full queue (backpressure count).
    pub submit_waits: u64,
    /// Virtual makespan of the fleet's runs on `workers` virtual workers
    /// (microseconds; see [`virtual_makespan`]). Lives here rather than
    /// in [`FleetOutcome`] because it depends on the worker count, which
    /// the byte-compared artifact must not.
    pub vt_makespan_us: u64,
    /// Sum of per-run virtual latencies (= 1-worker makespan).
    pub vt_total_us: u64,
    /// `vt_total_us / vt_makespan_us` — the simulated-time speedup the
    /// worker overlap buys.
    pub vt_speedup: f64,
}

/// What a fleet execution returns: the deterministic outcome, the merged
/// trace (per-run streams spliced in run-id order), and the wall-clock
/// timing.
#[derive(Debug)]
pub struct FleetReport {
    /// Deterministic rollup (serializable, byte-comparable).
    pub outcome: FleetOutcome,
    /// Per-run event streams merged in run-id order with renumbered
    /// sequence numbers and span ids.
    pub merged_trace: Vec<TraceEvent>,
    /// Wall-clock section (never serialized).
    pub timing: FleetTiming,
}

impl FleetReport {
    /// Assemble from executed runs; `runs` need not be sorted. Fails if
    /// any run's event stream is structurally malformed (a recorder bug —
    /// worker streams are well-formed by construction).
    pub fn assemble(
        fleet_seed: u64,
        mut runs: Vec<(RunRecord, Vec<TraceEvent>)>,
        timing: FleetTiming,
    ) -> Result<Self, MergeError> {
        runs.sort_by_key(|(r, _)| r.run_id);
        let merged_trace =
            merge_event_streams(runs.iter().map(|(_, ev)| ev.as_slice()).collect::<Vec<_>>())?;
        let records = runs.into_iter().map(|(r, _)| r).collect();
        Ok(Self {
            outcome: FleetOutcome::from_records(fleet_seed, records),
            merged_trace,
            timing,
        })
    }

    /// The merged trace as JSON Lines.
    pub fn merged_trace_jsonl(&self) -> Result<String, MergeError> {
        merged_jsonl(&self.merged_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_nearest_rank() {
        let s = LatencyStats::from_samples(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 100);
        assert_eq!(s.p99, 100);
        assert_eq!(s.max, 100);
        assert!((s.mean - 55.0).abs() < 1e-9);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
        let one = LatencyStats::from_samples(&[7]);
        assert_eq!((one.p50, one.p95, one.p99, one.max), (7, 7, 7, 7));
        // p99 separates from p95 once there are >20 samples.
        let many: Vec<u64> = (1..=100).collect();
        let m = LatencyStats::from_samples(&many);
        assert_eq!((m.p50, m.p95, m.p99, m.max), (50, 95, 99, 100));
    }

    #[test]
    fn virtual_makespan_schedules_greedily() {
        // One worker: the sum. Enough workers: the max.
        assert_eq!(virtual_makespan(&[5, 3, 8], 1), 16);
        assert_eq!(virtual_makespan(&[5, 3, 8], 3), 8);
        assert_eq!(virtual_makespan(&[5, 3, 8], 99), 8);
        // Two workers, run-id order: w0 takes 5, w1 takes 3, then 8 goes
        // to the earlier-free w1 → w0=5, w1=11.
        assert_eq!(virtual_makespan(&[5, 3, 8], 2), 11);
        assert_eq!(virtual_makespan(&[], 4), 0);
        // workers=0 is clamped to 1 rather than panicking.
        assert_eq!(virtual_makespan(&[2, 2], 0), 4);
    }

    #[test]
    fn outcome_counts_partition_runs() {
        let rec = |id: u64, outcome| RunRecord {
            run_id: id,
            task_id: format!("t-{id}"),
            profile: FmProfile::Oracle,
            seed: id,
            attempts: 2,
            retries: 1,
            outcome,
            result: RunResult {
                success: outcome == RunOutcome::Success,
                actions_attempted: 3,
                failures: 1,
                recoveries: 1,
                log: vec![],
            },
            summary: RunSummary::default(),
            tokens: TokenMeter::default(),
            cost_usd: 0.0,
            faults_injected: 0,
            exec_steps: 3,
            backoff_steps: 4,
            latency_steps: 7,
            vt_exec_us: 3_000_000,
            vt_backoff_us: 1_000_000,
            vt_total_us: 4_000_000,
        };
        let o = FleetOutcome::from_records(
            1,
            vec![
                rec(0, RunOutcome::Success),
                rec(1, RunOutcome::Failed),
                rec(2, RunOutcome::BudgetExceeded),
                rec(3, RunOutcome::Cancelled),
            ],
        );
        assert_eq!((o.succeeded, o.failed, o.cancelled), (1, 2, 1));
        assert_eq!(o.retries_total, 4);
        assert_eq!(o.latency_steps.p50, 7);
        assert_eq!(o.latency_vt_us.p50, 4_000_000);
        let json = o.to_json();
        let back: FleetOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }
}

//! # eclair-fleet
//!
//! A concurrent multi-workflow scheduler for the ECLAIR reproduction —
//! the "enterprise scale" half of the paper's title. Where `eclair-core`
//! executes one workflow at a time, this crate schedules *many* runs
//! across a worker-thread pool with the orchestration a production RPA
//! replacement needs: a bounded submission queue with backpressure,
//! per-run budgets and deadlines, seeded retry with exponential backoff
//! and jitter, cooperative cancellation, and a fleet-level report rolling
//! up results, traces, tokens, and throughput.
//!
//! ## The determinism-under-concurrency contract
//!
//! The headline guarantee: **concurrency changes wall-clock, never
//! outcomes.** An 8-worker fleet produces byte-identical per-run records
//! and a byte-identical merged trace to a sequential execution of the
//! same specs. This holds because:
//!
//! 1. every stochastic input of a run is derived from
//!    `(fleet_seed, run_id)` before scheduling ([`derive_seed`]) —
//!    attempt RNGs, backoff jitter, all of it;
//! 2. a run executes entirely inside one worker on freshly constructed
//!    state (its own `FmModel`, session, and trace recorder);
//! 3. reports and traces merge in run-id order, not completion order;
//! 4. wall-clock lives only in [`FleetTiming`], which cannot serialize.
//!
//! ## Quickstart
//!
//! ```
//! use eclair_fleet::{specs_for_tasks, Fleet, FleetConfig};
//! use eclair_fm::FmProfile;
//!
//! let tasks: Vec<_> = eclair_sites::all_tasks().into_iter().take(4).collect();
//! let fleet = Fleet::new(FleetConfig { workers: 2, fleet_seed: 7, ..Default::default() });
//! let report = fleet.run(specs_for_tasks(7, tasks, FmProfile::Oracle)).unwrap();
//! assert_eq!(report.outcome.records.len(), 4);
//! assert!(report.outcome.succeeded >= 3);
//! ```

mod backoff;
mod queue;
mod report;
mod scheduler;
mod spec;
mod worker;

pub use backoff::RetryPolicy;
pub use queue::{BoundedQueue, QueueStats};
pub use report::{
    virtual_makespan, FleetOutcome, FleetReport, FleetTiming, LatencyStats, RunOutcome, RunRecord,
};
pub use scheduler::{CancelToken, Fleet, FleetConfig};
pub use spec::{derive_seed, specs_for_tasks, RunSpec};
pub use worker::{execute_spec, execute_spec_shared, pricing_for};

pub use eclair_trace::MergeError;

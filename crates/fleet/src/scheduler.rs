//! The fleet scheduler: a bounded submission queue feeding a pool of
//! worker threads, with cooperative cancellation and a deterministic
//! report.
//!
//! Threading model: `Fleet::run` spawns `workers` scoped threads that pop
//! [`RunSpec`]s off a [`BoundedQueue`]; the calling thread submits specs
//! in run-id order, blocking when the queue is full (backpressure). Each
//! run executes entirely inside one worker with no shared mutable state
//! (see [`crate::worker::execute_spec`]), so records are collected in
//! completion order and then sorted by run id — making the report
//! byte-identical to [`Fleet::run_sequential`] on the same specs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use eclair_fm::{shared_percept_cache, SharedPerceptCache};
use eclair_trace::{MergeError, TraceEvent};

use crate::backoff::RetryPolicy;
use crate::queue::BoundedQueue;
use crate::report::{FleetReport, FleetTiming, RunRecord};
use crate::spec::RunSpec;
use crate::worker::{cancelled_record, execute_spec_shared};

/// Cooperative cancellation flag, cloneable across threads. Cancelling
/// stops new submissions and new attempts; runs mid-attempt finish their
/// current attempt first (attempts are the atomic unit of determinism).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Submission queue capacity; submissions beyond it block the
    /// producer (backpressure).
    pub queue_capacity: usize,
    /// Retry policy applied to every run.
    pub retry: RetryPolicy,
    /// Seed all run seeds derive from (via [`crate::spec::derive_seed`]).
    pub fleet_seed: u64,
    /// Master switch for the fleet-wide shared percept cache. On by
    /// default; individual runs can still opt out via
    /// [`RunSpec::with_shared`]. Off, no run sees the shared handle.
    pub use_shared: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 16,
            retry: RetryPolicy::default(),
            fleet_seed: eclair_core::calibration::SEED,
            use_shared: true,
        }
    }
}

impl FleetConfig {
    /// Set the worker count (scenario harnesses sweep this knob).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the fleet seed.
    pub fn with_seed(mut self, fleet_seed: u64) -> Self {
        self.fleet_seed = fleet_seed;
        self
    }

    /// Toggle the fleet-wide shared percept cache.
    pub fn with_shared(mut self, on: bool) -> Self {
        self.use_shared = on;
        self
    }
}

/// The scheduler handle. Owns the fleet-wide shared percept cache, which
/// therefore persists across `run`/`run_sequential` invocations on the
/// same `Fleet` — that persistence is where cross-run hits come from
/// (re-executed suites, retry rescues, metamorphic re-runs).
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    cancel: CancelToken,
    shared: Arc<SharedPerceptCache>,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new(FleetConfig::default())
    }
}

impl Fleet {
    /// Build a fleet.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            cancel: CancelToken::new(),
            shared: shared_percept_cache(),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The fleet's shared percept cache (benches read its quarantined
    /// stats; harnesses may hand the same `Fleet` a second suite to
    /// harvest cross-invocation hits).
    pub fn shared_cache(&self) -> &Arc<SharedPerceptCache> {
        &self.shared
    }

    /// The handle workers get: `Some` only under the config switch.
    fn shared_handle(&self) -> Option<&Arc<SharedPerceptCache>> {
        self.config.use_shared.then_some(&self.shared)
    }

    /// A token that cancels this fleet when triggered (from any thread).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Execute every spec on the worker pool and aggregate the report.
    /// Fails only if a worker produced a structurally malformed trace
    /// stream (a recorder bug, surfaced instead of panicking).
    pub fn run(&self, specs: Vec<RunSpec>) -> Result<FleetReport, MergeError> {
        let started = Instant::now();
        let total = specs.len();
        let workers = self.config.workers.max(1);
        let queue: BoundedQueue<RunSpec> = BoundedQueue::new(self.config.queue_capacity);
        let results: Mutex<Vec<(RunRecord, Vec<TraceEvent>)>> =
            Mutex::new(Vec::with_capacity(total));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some(spec) = queue.pop() {
                        let run = if self.cancel.is_cancelled() {
                            cancelled_record(&spec)
                        } else {
                            execute_spec_shared(
                                &spec,
                                &self.config.retry,
                                &self.cancel,
                                self.shared_handle(),
                            )
                        };
                        results.lock().unwrap().push(run);
                    }
                });
            }
            for spec in specs {
                if self.cancel.is_cancelled() {
                    results.lock().unwrap().push(cancelled_record(&spec));
                    continue;
                }
                if let Err(spec) = queue.push(spec) {
                    results.lock().unwrap().push(cancelled_record(&spec));
                }
            }
            queue.close();
        });
        let queue_stats = queue.stats();
        let runs = results.into_inner().unwrap();
        self.assemble(
            runs,
            workers,
            started,
            queue_stats.max_depth,
            queue_stats.push_waits,
        )
    }

    /// Execute every spec in submission order on the calling thread — the
    /// baseline the concurrent path must match byte-for-byte.
    pub fn run_sequential(&self, specs: Vec<RunSpec>) -> Result<FleetReport, MergeError> {
        let started = Instant::now();
        let runs: Vec<_> = specs
            .iter()
            .map(|spec| {
                if self.cancel.is_cancelled() {
                    cancelled_record(spec)
                } else {
                    execute_spec_shared(
                        spec,
                        &self.config.retry,
                        &self.cancel,
                        self.shared_handle(),
                    )
                }
            })
            .collect();
        self.assemble(runs, 1, started, 0, 0)
    }

    fn assemble(
        &self,
        runs: Vec<(RunRecord, Vec<TraceEvent>)>,
        workers: usize,
        started: Instant,
        queue_max_depth: usize,
        submit_waits: u64,
    ) -> Result<FleetReport, MergeError> {
        let completed = runs.len();
        let wall = started.elapsed();
        // Virtual-time view of the same schedule: per-run durations in
        // run-id order onto `workers` virtual workers. Unlike the wall
        // fields this is deterministic, but it still depends on the
        // worker count, so it belongs in the timing section.
        let mut durations: Vec<(u64, u64)> = runs
            .iter()
            .map(|(r, _)| (r.run_id, r.vt_total_us))
            .collect();
        durations.sort_unstable();
        let vt_durations: Vec<u64> = durations.into_iter().map(|(_, d)| d).collect();
        let vt_makespan_us = crate::report::virtual_makespan(&vt_durations, workers);
        let vt_total_us: u64 = vt_durations.iter().sum();
        let timing = FleetTiming {
            workers,
            wall_nanos: wall.as_nanos(),
            runs_per_sec: if wall.as_secs_f64() > 0.0 {
                completed as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            queue_max_depth,
            submit_waits,
            vt_makespan_us,
            vt_total_us,
            vt_speedup: if vt_makespan_us > 0 {
                vt_total_us as f64 / vt_makespan_us as f64
            } else {
                0.0
            },
        };
        FleetReport::assemble(self.config.fleet_seed, runs, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunOutcome;
    use crate::spec::specs_for_tasks;
    use eclair_fm::FmProfile;
    use eclair_sites::all_tasks;

    fn small_specs(n: usize, seed: u64) -> Vec<RunSpec> {
        specs_for_tasks(
            seed,
            all_tasks().into_iter().take(n).collect(),
            FmProfile::Oracle,
        )
    }

    #[test]
    fn concurrent_report_matches_sequential_bytes() {
        let fleet = Fleet::new(FleetConfig {
            workers: 4,
            queue_capacity: 2,
            fleet_seed: 21,
            ..FleetConfig::default()
        });
        let par = fleet.run(small_specs(6, 21)).expect("parallel run");
        let seq = fleet
            .run_sequential(small_specs(6, 21))
            .expect("sequential run");
        assert_eq!(par.outcome.to_json(), seq.outcome.to_json());
        assert_eq!(
            par.merged_trace_jsonl().unwrap(),
            seq.merged_trace_jsonl().unwrap()
        );
        assert_eq!(par.timing.workers, 4);
        assert_eq!(seq.timing.workers, 1);
    }

    #[test]
    fn records_come_back_in_run_id_order() {
        let fleet = Fleet::new(FleetConfig {
            workers: 3,
            fleet_seed: 9,
            ..FleetConfig::default()
        });
        let report = fleet.run(small_specs(5, 9)).expect("run");
        let ids: Vec<u64> = report.outcome.records.iter().map(|r| r.run_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.outcome.succeeded, 5, "oracle completes these");
    }

    #[test]
    fn cancellation_drains_as_cancelled_records() {
        let fleet = Fleet::new(FleetConfig {
            workers: 2,
            fleet_seed: 3,
            ..FleetConfig::default()
        });
        fleet.cancel_token().cancel();
        let report = fleet.run(small_specs(4, 3)).expect("run");
        assert_eq!(report.outcome.cancelled, 4);
        assert_eq!(report.outcome.succeeded, 0);
        assert!(report
            .outcome
            .records
            .iter()
            .all(|r| r.outcome == RunOutcome::Cancelled));
        assert!(report.merged_trace.is_empty());
    }

    #[test]
    fn cancellation_mid_flight_keeps_the_record_partition_intact() {
        // Cancel from another thread while the fleet is mid-run: retries
        // are armed (impossible success predicate, several attempts with
        // backoff), so cancellation lands between attempts or between
        // runs non-deterministically. Whatever the interleaving, the
        // report invariants must hold: one record per spec, run-id
        // sorted, outcome counts partitioning the total, and cancelled
        // records never having exhausted their retries.
        let mut specs = small_specs(8, 13);
        for s in &mut specs {
            s.task.success = eclair_sites::SuccessCheck::probes(&[("never", "true")]);
        }
        let fleet = Fleet::new(FleetConfig {
            workers: 2,
            queue_capacity: 1,
            retry: RetryPolicy {
                max_attempts: 4,
                ..RetryPolicy::default()
            },
            fleet_seed: 13,
            use_shared: true,
        });
        let token = fleet.cancel_token();
        let report = std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                token.cancel();
            });
            fleet.run(specs)
        })
        .expect("run");
        let o = &report.outcome;
        assert_eq!(o.records.len(), 8, "every spec must produce a record");
        let ids: Vec<u64> = o.records.iter().map(|r| r.run_id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
        assert_eq!(o.succeeded, 0, "the success predicate is impossible");
        assert_eq!(o.failed + o.cancelled, 8);
        for r in &o.records {
            match r.outcome {
                RunOutcome::Cancelled => {
                    // Cut short before exhausting retries: either never
                    // started (drained from the queue) or interrupted
                    // between attempts, mid-backoff.
                    assert!(r.attempts < 4, "cancelled runs never exhaust retries");
                    assert!(r.attempts > 0 || r.result.log.is_empty());
                }
                _ => assert_eq!(r.attempts, 4, "uncancelled runs retry to exhaustion"),
            }
        }
    }

    #[test]
    fn tiny_queue_applies_backpressure_but_not_to_results() {
        let fleet = Fleet::new(FleetConfig {
            workers: 2,
            queue_capacity: 1,
            fleet_seed: 5,
            ..FleetConfig::default()
        });
        let report = fleet.run(small_specs(6, 5)).expect("run");
        assert_eq!(report.outcome.records.len(), 6);
        assert!(report.timing.queue_max_depth <= 1);
    }
}

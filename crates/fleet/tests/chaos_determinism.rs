//! End-to-end determinism of chaos fleets.
//!
//! The fleet's contract — concurrency changes wall-clock, never outcomes —
//! must survive fault injection: the fault schedule is a pure function of
//! `(chaos_seed, run_id, step)`, so a chaos fleet's serialized outcome and
//! merged trace must be byte-identical across repeated runs *and* across
//! worker counts. This is the same property the CI `chaos-smoke` job
//! checks from the outside by diffing two `chaos_bench` determinism dumps.

use eclair_chaos::ChaosProfile;
use eclair_fleet::{Fleet, FleetConfig, FleetReport, RetryPolicy, RunSpec};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use eclair_trace::EventKind;

const FLEET_SEED: u64 = 4242;
const CHAOS_SEED: u64 = 99;

fn chaos_specs(profile: FmProfile) -> Vec<RunSpec> {
    all_tasks()
        .into_iter()
        .take(6)
        .enumerate()
        .map(|(i, t)| {
            RunSpec::for_task(FLEET_SEED, i as u64, t, profile)
                .with_chaos(ChaosProfile::full(CHAOS_SEED, 0.35))
        })
        .collect()
}

fn run_with_workers(workers: usize) -> FleetReport {
    let fleet = Fleet::new(FleetConfig {
        workers,
        queue_capacity: 2,
        retry: RetryPolicy::default(),
        fleet_seed: FLEET_SEED,
        use_shared: true,
    });
    fleet.run(chaos_specs(FmProfile::Gpt4V)).expect("run")
}

#[test]
fn chaos_fleet_is_byte_identical_across_runs_and_worker_counts() {
    let sequential = Fleet::new(FleetConfig {
        workers: 1,
        fleet_seed: FLEET_SEED,
        ..FleetConfig::default()
    })
    .run_sequential(chaos_specs(FmProfile::Gpt4V))
    .expect("sequential run");
    let json = sequential.outcome.to_json();
    let trace = sequential.merged_trace_jsonl().unwrap();

    for workers in [1, 4] {
        let report = run_with_workers(workers);
        assert_eq!(
            report.outcome.to_json(),
            json,
            "chaos outcome must not depend on {workers}-worker scheduling"
        );
        assert_eq!(
            report.merged_trace_jsonl().unwrap(),
            trace,
            "chaos merged trace must not depend on {workers}-worker scheduling"
        );
    }

    // Same config run again: byte-identical, not merely equivalent.
    let again = run_with_workers(4);
    assert_eq!(again.outcome.to_json(), json);
    assert_eq!(again.merged_trace_jsonl().unwrap(), trace);
}

#[test]
fn chaos_fleet_records_injections_in_records_and_trace() {
    let report = run_with_workers(4);
    let total_faults = report.outcome.faults_injected_total();
    assert!(
        total_faults > 0,
        "a 0.35 fault rate over 6 runs must inject something"
    );
    let traced = report
        .merged_trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
        .count() as u64;
    assert_eq!(
        traced, total_faults,
        "every counted injection must appear as a FaultInjected trace event"
    );
}

#[test]
fn oracle_under_chaos_still_completes_most_tasks() {
    // The upgraded recovery path (modal escape, re-grounding, re-login)
    // should let a perfect grounder absorb a moderate fault rate.
    let fleet = Fleet::new(FleetConfig {
        workers: 2,
        fleet_seed: FLEET_SEED,
        ..FleetConfig::default()
    });
    let report = fleet.run(chaos_specs(FmProfile::Oracle)).expect("run");
    assert!(
        report.outcome.succeeded >= 4,
        "oracle under 0.35 chaos: {}/6 succeeded",
        report.outcome.succeeded
    );
}

//! The shared perception cache must be invisible everywhere except the
//! quarantined counters: an 8-worker fleet with the shared cache and
//! single-flight dedup produces byte-identical records JSON and merged
//! trace JSONL to a sequential execution — and to a fleet with the
//! shared layer off — across arbitrary seeds. Cross-run hits are real
//! (replica specs, re-executed suites) but live only in `CacheStats` and
//! the `shared.*` perf counters, never in a serialized artifact.

use eclair_fleet::{specs_for_tasks, Fleet, FleetConfig, RunSpec};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use proptest::prelude::*;

/// The shared cache handle crosses worker-thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<eclair_fm::SharedPerceptCache>();
    assert_send_sync::<std::sync::Arc<eclair_fm::SharedPerceptCache>>();
};

fn fleet(seed: u64, workers: usize, shared: bool) -> Fleet {
    Fleet::new(
        FleetConfig::default()
            .with_workers(workers)
            .with_seed(seed)
            .with_shared(shared),
    )
}

fn small_specs(seed: u64, n: usize) -> Vec<RunSpec> {
    specs_for_tasks(
        seed,
        all_tasks().into_iter().take(n).collect(),
        FmProfile::Gpt4V,
    )
}

/// Two replicas of each task at *identical* run seeds (the second copy
/// re-uses the first's seed): every percept of the replica is a shared
/// hit or a single-flight coalesce, never a recompute.
fn replica_specs(seed: u64, n: usize) -> Vec<RunSpec> {
    let firsts = small_specs(seed, n);
    let mut specs = Vec::with_capacity(2 * n);
    for s in &firsts {
        let mut twin = s.clone();
        twin.run_id = s.run_id + n as u64;
        specs.push(s.clone());
        specs.push(twin);
    }
    specs.sort_by_key(|s| s.run_id);
    specs
}

proptest! {
    /// Byte-identity across arbitrary seeds: 8 workers + shared cache +
    /// single-flight == sequential == shared-off, on records JSON and
    /// merged JSONL alike.
    #[test]
    fn shared_fleet_is_byte_identical_to_sequential_and_to_shared_off(
        seed in 0u64..1_000_000_000,
    ) {
        let on = fleet(seed, 8, true);
        let par = on.run(small_specs(seed, 3)).expect("parallel");
        let seq = on.run_sequential(small_specs(seed, 3)).expect("sequential");
        let off = fleet(seed, 8, false).run(small_specs(seed, 3)).expect("off");
        prop_assert_eq!(par.outcome.to_json(), seq.outcome.to_json());
        prop_assert_eq!(par.outcome.to_json(), off.outcome.to_json());
        prop_assert_eq!(
            par.merged_trace_jsonl().unwrap(),
            seq.merged_trace_jsonl().unwrap()
        );
        prop_assert_eq!(
            par.merged_trace_jsonl().unwrap(),
            off.merged_trace_jsonl().unwrap()
        );
    }
}

#[test]
fn replica_runs_hit_the_shared_cache_without_changing_a_byte() {
    let on = fleet(404, 8, true);
    let par = on.run(replica_specs(404, 4)).expect("parallel");
    let stats = on.shared_cache().stats();
    assert!(
        stats.hits + stats.coalesced > 0,
        "identical-seed replicas must be served by the shared layer: {stats:?}"
    );
    // A fresh shared-on fleet run sequentially, and a shared-off fleet,
    // agree byte-for-byte — hits changed nothing observable.
    let seq = fleet(404, 1, true)
        .run_sequential(replica_specs(404, 4))
        .expect("sequential");
    let off_fleet = fleet(404, 8, false);
    let off = off_fleet.run(replica_specs(404, 4)).expect("off");
    assert_eq!(par.outcome.to_json(), seq.outcome.to_json());
    assert_eq!(par.outcome.to_json(), off.outcome.to_json());
    assert_eq!(
        par.merged_trace_jsonl().unwrap(),
        seq.merged_trace_jsonl().unwrap()
    );
    assert_eq!(
        par.merged_trace_jsonl().unwrap(),
        off.merged_trace_jsonl().unwrap()
    );
    assert_eq!(
        off_fleet.shared_cache().stats(),
        Default::default(),
        "a shared-off fleet never touches its cache"
    );
}

#[test]
fn the_cache_persists_across_fleet_invocations() {
    // Cross-run redundancy lives *between* invocations: the same Fleet
    // executing the same suite twice serves the second pass from the
    // shards the first pass filled.
    let f = fleet(777, 2, true);
    let a = f.run(small_specs(777, 4)).expect("first pass");
    let misses_after_first = f.shared_cache().stats().misses;
    let b = f.run(small_specs(777, 4)).expect("second pass");
    let stats = f.shared_cache().stats();
    assert_eq!(
        stats.misses, misses_after_first,
        "a re-executed suite recomputes nothing: every percept is resident"
    );
    assert!(stats.hits > 0, "second pass must harvest cross-run hits");
    assert_eq!(a.outcome.to_json(), b.outcome.to_json());
    assert_eq!(
        a.merged_trace_jsonl().unwrap(),
        b.merged_trace_jsonl().unwrap()
    );
}

#[test]
fn shared_counters_are_quarantined_from_serialized_artifacts() {
    eclair_trace::perf::reset();
    let f = fleet(55, 1, true);
    // Two sequential passes on one thread: guaranteed shared hits, and
    // the perf counters all land on this thread where we can read them.
    let _ = f.run_sequential(replica_specs(55, 2)).expect("pass one");
    let report = f.run_sequential(replica_specs(55, 2)).expect("pass two");
    let c = eclair_trace::perf::snapshot();
    assert!(
        c.shared_hits > 0,
        "the quarantine must have something in it"
    );
    assert!(c.shared_misses > 0);
    assert!(c.shared_cached_tokens > 0);
    let json = report.outcome.to_json();
    let jsonl = report.merged_trace_jsonl().unwrap();
    for needle in [
        "shared_hits",
        "shared_misses",
        "shared_evictions",
        "single_flight",
        "shared_cached_tokens",
        "coalesced",
    ] {
        assert!(
            !json.contains(needle),
            "records JSON must not leak `{needle}`"
        );
        assert!(
            !jsonl.contains(needle),
            "merged trace must not leak `{needle}`"
        );
    }
}

#[test]
fn per_spec_opt_out_bypasses_the_shared_layer() {
    let f = fleet(909, 1, true);
    let specs: Vec<RunSpec> = replica_specs(909, 2)
        .into_iter()
        .map(|s| s.with_shared(false))
        .collect();
    let report = f.run_sequential(specs).expect("run");
    assert!(report.outcome.records.iter().all(|r| r.attempts > 0));
    let stats = f.shared_cache().stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.coalesced),
        (0, 0, 0),
        "opted-out specs must never reach the shared shards"
    );
    assert!(f.shared_cache().is_empty());
}

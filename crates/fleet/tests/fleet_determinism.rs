//! The fleet's headline guarantee, pinned as tests: an 8-worker fleet
//! produces byte-identical per-run records and merged trace to a
//! sequential execution of the same specs — plus compile-time `Send +
//! Sync` assertions for every type that crosses a worker boundary, and
//! property tests over the retry/backoff schedule.

use eclair_fleet::{
    derive_seed, specs_for_tasks, Fleet, FleetConfig, RetryPolicy, RunOutcome, RunSpec,
};
use eclair_fm::FmProfile;
use eclair_sites::all_tasks;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compile-time assertions: if any of these types loses `Send + Sync`,
/// fleet parallelism silently dies — so make it a build failure instead.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<eclair_sites::TaskSpec>();
    assert_send_sync::<eclair_core::execute::executor::ExecConfig>();
    assert_send_sync::<eclair_fm::FmProfile>();
    assert_send_sync::<eclair_fm::ModelProfile>();
    assert_send_sync::<eclair_workflow::Sop>();
    assert_send_sync::<RunSpec>();
    assert_send_sync::<eclair_fleet::RunRecord>();
    assert_send_sync::<eclair_fleet::CancelToken>();
};

fn suite_specs(fleet_seed: u64) -> Vec<RunSpec> {
    specs_for_tasks(fleet_seed, all_tasks(), FmProfile::Gpt4V)
}

#[test]
fn eight_workers_match_sequential_byte_for_byte() {
    let fleet = Fleet::new(FleetConfig {
        workers: 8,
        queue_capacity: 4,
        retry: RetryPolicy::default(),
        fleet_seed: 2024,
        use_shared: true,
    });
    let par = fleet.run(suite_specs(2024)).expect("parallel run");
    let seq = fleet
        .run_sequential(suite_specs(2024))
        .expect("sequential run");

    assert_eq!(par.outcome.records.len(), all_tasks().len());
    // Per-run records, including RunResult/summary/tokens, byte-identical.
    assert_eq!(par.outcome.to_json(), seq.outcome.to_json());
    // Merged trace JSONL byte-identical.
    assert_eq!(
        par.merged_trace_jsonl().unwrap(),
        seq.merged_trace_jsonl().unwrap()
    );
    // And the fleet actually exercised concurrency metadata.
    assert_eq!(par.timing.workers, 8);
    // A GPT-4 fleet over the full suite both succeeds and retries.
    assert!(par.outcome.succeeded > 0, "{:?}", par.outcome.latency_steps);
    assert!(par.outcome.retries_total > 0);
    assert!(par.outcome.tokens.total_tokens() > 0);
    assert!(par.outcome.cost_usd > 0.0);
}

#[test]
fn repeated_concurrent_runs_are_identical() {
    let fleet = Fleet::new(FleetConfig {
        workers: 8,
        queue_capacity: 2,
        fleet_seed: 31,
        ..FleetConfig::default()
    });
    let specs: Vec<RunSpec> = specs_for_tasks(
        31,
        all_tasks().into_iter().take(10).collect(),
        FmProfile::Gpt4V,
    );
    let a = fleet.run(specs.clone()).expect("first run");
    let b = fleet.run(specs).expect("second run");
    assert_eq!(a.outcome.to_json(), b.outcome.to_json());
    assert_eq!(
        a.merged_trace_jsonl().unwrap(),
        b.merged_trace_jsonl().unwrap()
    );
}

#[test]
fn different_fleet_seeds_change_outputs() {
    let mk = |seed| {
        let fleet = Fleet::new(FleetConfig {
            workers: 2,
            fleet_seed: seed,
            ..FleetConfig::default()
        });
        fleet
            .run(specs_for_tasks(
                seed,
                all_tasks().into_iter().take(6).collect(),
                FmProfile::Gpt4V,
            ))
            .expect("run")
            .outcome
            .to_json()
    };
    assert_ne!(mk(1), mk(2), "the seed must matter");
}

#[test]
fn budget_and_deadline_outcomes_survive_concurrency() {
    let tasks: Vec<_> = all_tasks().into_iter().take(4).collect();
    let specs: Vec<RunSpec> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, mut t)| {
            // Unsatisfiable predicate: every run must end via its budget.
            t.success = eclair_sites::SuccessCheck::probes(&[("never", "true")]);
            let spec = RunSpec::for_task(77, i as u64, t, FmProfile::Gpt4V);
            if i % 2 == 0 {
                spec.with_token_budget(1)
            } else {
                spec.with_deadline_steps(1)
            }
        })
        .collect();
    let fleet = Fleet::new(FleetConfig {
        workers: 4,
        retry: RetryPolicy::none(),
        fleet_seed: 77,
        ..FleetConfig::default()
    });
    let par = fleet.run(specs.clone()).expect("parallel run");
    let seq = fleet.run_sequential(specs).expect("sequential run");
    assert_eq!(par.outcome.to_json(), seq.outcome.to_json());
    for (i, r) in par.outcome.records.iter().enumerate() {
        let expect = if i % 2 == 0 {
            RunOutcome::BudgetExceeded
        } else {
            RunOutcome::DeadlineExceeded
        };
        assert_eq!(r.outcome, expect, "run {i}");
    }
}

proptest! {
    /// The nominal backoff schedule is monotone non-decreasing and never
    /// exceeds the cap.
    #[test]
    fn backoff_schedule_is_monotone_and_bounded(
        max_attempts in 1u32..12,
        base in 1u64..100,
        cap in 1u64..10_000,
        mult_milli in 1000u64..4000,
    ) {
        let p = RetryPolicy {
            max_attempts,
            base_delay_steps: base,
            max_delay_steps: cap,
            multiplier: mult_milli as f64 / 1000.0,
            jitter: 0.0,
        };
        let sched = p.nominal_schedule();
        prop_assert_eq!(sched.len() as u32, max_attempts - 1);
        for w in sched.windows(2) {
            prop_assert!(w[1] >= w[0], "schedule must be monotone: {:?}", sched);
        }
        for d in &sched {
            prop_assert!(*d <= cap, "delay {} exceeds cap {}", d, cap);
        }
    }

    /// Jittered delays stay within `[nominal*(1-jitter), nominal]` for
    /// arbitrary seeds and retry indices.
    #[test]
    fn jittered_delays_stay_in_band(
        seed in 0u64..1_000_000_000,
        retry in 1u32..10,
        jitter_milli in 0u64..1000,
    ) {
        let p = RetryPolicy {
            jitter: jitter_milli as f64 / 1000.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let nominal = p.nominal_delay(retry);
        let d = p.jittered_delay(retry, &mut rng);
        prop_assert!(d <= nominal);
        let floor = (nominal as f64 * (1.0 - p.jitter)).floor() as u64;
        prop_assert!(d >= floor.saturating_sub(1), "d={} floor={}", d, floor);
    }

    /// Seed derivation is injective-enough in practice: distinct run ids
    /// under one fleet seed never collide in a small window.
    #[test]
    fn derived_seeds_do_not_collide_locally(fleet_seed in 0u64..1_000_000_000) {
        let mut seen = std::collections::HashSet::new();
        for run_id in 0..64u64 {
            prop_assert!(seen.insert(derive_seed(fleet_seed, run_id)));
        }
    }
}

//! Semantic step matching: the deterministic stand-in for the paper's human
//! annotators, who judged whether a generated step "is in" the reference
//! SOP and whether a suggested action is "semantically equivalent" to the
//! gold action (§4.1.1, §4.2.1).
//!
//! A step is decomposed into a *verb class* (click / type / navigate / ...)
//! and a bag of content tokens; similarity combines verb agreement with
//! token F1 overlap. Thresholds are deliberately forgiving about phrasing
//! ("Click the 'New issue' button" ≈ "Press New issue") and strict about
//! substance (different targets do not match).

use serde::{Deserialize, Serialize};

/// Coarse interaction verb classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerbClass {
    Click,
    Type,
    Navigate,
    Scroll,
    Press,
    Check,
    Select,
    /// No recognizable interaction verb.
    Other,
}

const VERB_TABLE: &[(&str, VerbClass)] = &[
    ("click", VerbClass::Click),
    ("tap", VerbClass::Click),
    ("hit", VerbClass::Click),
    ("activate", VerbClass::Click),
    ("push", VerbClass::Click),
    ("type", VerbClass::Type),
    ("enter", VerbClass::Type),
    ("input", VerbClass::Type),
    ("fill", VerbClass::Type),
    ("write", VerbClass::Type),
    ("set", VerbClass::Type),
    ("navigate", VerbClass::Navigate),
    ("go", VerbClass::Navigate),
    ("open", VerbClass::Navigate),
    ("visit", VerbClass::Navigate),
    ("scroll", VerbClass::Scroll),
    ("press", VerbClass::Press),
    ("check", VerbClass::Check),
    ("tick", VerbClass::Check),
    ("uncheck", VerbClass::Check),
    ("toggle", VerbClass::Check),
    ("enable", VerbClass::Check),
    ("disable", VerbClass::Check),
    ("select", VerbClass::Select),
    ("choose", VerbClass::Select),
    ("pick", VerbClass::Select),
];

const STOPWORDS: &[&str] = &[
    "the", "a", "an", "on", "in", "to", "of", "for", "with", "into", "at", "and", "then", "now",
    "button", "field", "link", "box", "option", "page", "screen", "item", "element", "labeled",
    "labelled", "called", "named", "that", "says", "text", "your", "it",
];

/// Lowercase, strip punctuation, drop stopwords.
pub fn normalize_tokens(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && !STOPWORDS.contains(t))
        .map(str::to_string)
        .collect()
}

/// Normalized tokens with interaction verbs removed — the *substance* of a
/// step (targets, values). Verb agreement is scored separately, so leaving
/// verbs in the bags would double-count them and make "Click A" ≈ "Click B".
pub fn content_tokens(text: &str) -> Vec<String> {
    normalize_tokens(text)
        .into_iter()
        .filter(|t| !VERB_TABLE.iter().any(|(w, _)| w == t))
        .collect()
}

/// Classify the leading interaction verb of a step.
pub fn verb_class(text: &str) -> VerbClass {
    for tok in text
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .take(4)
    {
        if let Some((_, v)) = VERB_TABLE.iter().find(|(w, _)| *w == tok) {
            return *v;
        }
    }
    VerbClass::Other
}

/// Equivalence between verb classes (press≈click for buttons; select≈click;
/// enter≈type; click≈navigate for links).
fn verbs_compatible(a: VerbClass, b: VerbClass) -> bool {
    use VerbClass::*;
    if a == b {
        return true;
    }
    matches!(
        (a, b),
        (Click, Press)
            | (Press, Click)
            | (Click, Select)
            | (Select, Click)
            | (Check, Click)
            | (Click, Check)
            | (Type, Select)
            | (Select, Type)
            | (Click, Navigate)
            | (Navigate, Click)
    )
}

/// Token-level F1 between two bags of tokens.
pub fn token_f1(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut b_left: Vec<&String> = b.iter().collect();
    let mut overlap = 0usize;
    for tok in a {
        if let Some(pos) = b_left.iter().position(|t| *t == tok) {
            b_left.swap_remove(pos);
            overlap += 1;
        }
    }
    let p = overlap as f64 / a.len() as f64;
    let r = overlap as f64 / b.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Similarity in [0, 1] between two step texts: verb compatibility worth
/// 0.4, content-token F1 worth 0.6 (verbs excluded from the token bags so
/// they are not double-counted).
pub fn step_similarity(a: &str, b: &str) -> f64 {
    let va = verb_class(a);
    let vb = verb_class(b);
    let verb_score = if verbs_compatible(va, vb) { 1.0 } else { 0.0 };
    let ta = content_tokens(a);
    let tb = content_tokens(b);
    0.4 * verb_score + 0.6 * token_f1(&ta, &tb)
}

/// Default decision threshold for "these steps are the same step": a
/// compatible verb plus a clear majority of shared content.
pub const MATCH_THRESHOLD: f64 = 0.75;

/// Whether two steps are semantically equivalent.
pub fn steps_match(a: &str, b: &str) -> bool {
    step_similarity(a, b) >= MATCH_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paraphrases_match() {
        assert!(steps_match(
            "Click the 'New issue' button",
            "Press New issue"
        ));
        assert!(steps_match(
            "Type \"Login broken\" into the Title field",
            "Enter Login broken in Title"
        ));
        assert!(steps_match(
            "Select 'Bug' from the label dropdown",
            "Choose the Bug label"
        ));
    }

    #[test]
    fn different_targets_do_not_match() {
        assert!(!steps_match(
            "Click the 'Delete project' button",
            "Click the 'New issue' button"
        ));
        assert!(!steps_match(
            "Type \"alpha\" into Search",
            "Type \"omega\" into Description"
        ));
    }

    #[test]
    fn verb_class_detection() {
        assert_eq!(verb_class("Click the save button"), VerbClass::Click);
        assert_eq!(verb_class("Now type your name"), VerbClass::Type);
        assert_eq!(
            verb_class("Navigate to the issues page"),
            VerbClass::Navigate
        );
        assert_eq!(verb_class("Wait patiently"), VerbClass::Other);
    }

    #[test]
    fn press_click_compatible() {
        assert!(verbs_compatible(VerbClass::Click, VerbClass::Press));
        assert!(!verbs_compatible(VerbClass::Type, VerbClass::Scroll));
    }

    #[test]
    fn token_f1_properties() {
        let a = content_tokens("Click the Save changes button");
        let b = content_tokens("Press Save changes");
        assert!(token_f1(&a, &b) > 0.5);
        assert_eq!(token_f1(&a, &a), 1.0);
        assert_eq!(token_f1(&a, &[]), 0.0);
        assert_eq!(token_f1(&[], &[]), 1.0);
    }

    #[test]
    fn content_tokens_exclude_verbs() {
        assert_eq!(
            content_tokens("Click the 'New issue' button"),
            vec!["new".to_string(), "issue".into()]
        );
    }

    #[test]
    fn similarity_is_symmetric() {
        let pairs = [
            ("Click 'New issue'", "Press the New issue button"),
            ("Type \"x\" into Title", "Scroll down"),
        ];
        for (a, b) in pairs {
            assert!((step_similarity(a, b) - step_similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn stopwords_do_not_inflate_similarity() {
        // Shared stopwords only — must not match.
        assert!(!steps_match(
            "Click on the button in the page",
            "Type into the field on the page"
        ));
    }

    #[test]
    fn normalize_strips_punctuation_and_case() {
        assert_eq!(
            normalize_tokens("Click 'New Issue'!"),
            vec!["click".to_string(), "new".into(), "issue".into()]
        );
    }
}

//! Semantic actions: the unit of workflow execution.
//!
//! A semantic action says *what* to do ("click the button labelled New
//! issue"), not *where* the pixels are. Turning one into raw events is
//! **grounding** — done perfectly by the oracle in [`crate::replay`] and
//! imperfectly by the FM-based grounder in `eclair-core` (the gap between
//! the two is exactly what Table 2/Table 3 measure).

use eclair_gui::{Key, Point};
use serde::{Deserialize, Serialize};

/// How an action refers to its target widget.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetRef {
    /// By visible text ("New issue"). What humans write in SOPs.
    Label(String),
    /// By programmatic name — what RPA scripts and gold traces use.
    Name(String),
    /// By raw viewport coordinates — what a grounded agent ultimately emits.
    Point(Point),
}

impl TargetRef {
    /// A short rendering for SOPs/logs.
    pub fn describe(&self) -> String {
        match self {
            TargetRef::Label(l) => format!("'{l}'"),
            TargetRef::Name(n) => format!("[{n}]"),
            TargetRef::Point(p) => format!("({},{})", p.x, p.y),
        }
    }
}

/// A semantic action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Click a target (activates buttons/links, focuses inputs, toggles
    /// checkboxes).
    Click(TargetRef),
    /// Type text; `target` of `None` types into whatever is focused.
    /// A `Some` target implies the focus-then-type decomposition.
    Type {
        target: Option<TargetRef>,
        text: String,
    },
    /// Clear a (possibly prefilled) field and type a new value — what a
    /// demonstrator does by select-all-and-retype.
    Replace { target: TargetRef, text: String },
    /// Press a non-printable key.
    Press(Key),
    /// Scroll vertically by pixels.
    Scroll(i32),
}

impl Action {
    /// Natural-language rendering, the way a human would write the step.
    pub fn describe(&self) -> String {
        match self {
            Action::Click(t) => format!("Click {}", t.describe()),
            Action::Type {
                target: Some(t),
                text,
            } => format!("Type \"{text}\" into {}", t.describe()),
            Action::Type { target: None, text } => format!("Type \"{text}\""),
            Action::Replace { target, text } => {
                format!("Set {} to \"{text}\"", target.describe())
            }
            Action::Press(k) => format!("Press {}", k.name()),
            Action::Scroll(dy) if *dy >= 0 => "Scroll down".to_string(),
            Action::Scroll(_) => "Scroll up".to_string(),
        }
    }

    /// The target reference, if the action has one.
    pub fn target(&self) -> Option<&TargetRef> {
        match self {
            Action::Click(t) => Some(t),
            Action::Type {
                target: Some(t), ..
            } => Some(t),
            Action::Replace { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Whether two actions are the same *kind* of interaction.
    pub fn same_kind(&self, other: &Action) -> bool {
        matches!(
            (self, other),
            (Action::Click(_), Action::Click(_))
                | (Action::Type { .. }, Action::Type { .. })
                | (Action::Replace { .. }, Action::Replace { .. })
                | (Action::Replace { .. }, Action::Type { .. })
                | (Action::Type { .. }, Action::Replace { .. })
                | (Action::Press(_), Action::Press(_))
                | (Action::Scroll(_), Action::Scroll(_))
        )
    }
}

/// An ordered sequence of semantic actions (a workflow's gold trace or an
/// agent's emitted plan).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActionTrace {
    /// The actions in execution order.
    pub actions: Vec<Action>,
}

impl ActionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vec.
    pub fn from_actions(actions: Vec<Action>) -> Self {
        Self { actions }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// One line per action, numbered from 1.
    pub fn describe(&self) -> String {
        self.actions
            .iter()
            .enumerate()
            .map(|(i, a)| format!("{}. {}", i + 1, a.describe()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_round_trips_intent() {
        assert_eq!(
            Action::Click(TargetRef::Label("New issue".into())).describe(),
            "Click 'New issue'"
        );
        assert_eq!(
            Action::Type {
                target: Some(TargetRef::Name("title".into())),
                text: "Login broken".into()
            }
            .describe(),
            "Type \"Login broken\" into [title]"
        );
        assert_eq!(Action::Press(Key::Enter).describe(), "Press Enter");
        assert_eq!(Action::Scroll(-100).describe(), "Scroll up");
    }

    #[test]
    fn same_kind_compares_variants() {
        let c1 = Action::Click(TargetRef::Label("A".into()));
        let c2 = Action::Click(TargetRef::Name("b".into()));
        let t = Action::Type {
            target: None,
            text: "x".into(),
        };
        assert!(c1.same_kind(&c2));
        assert!(!c1.same_kind(&t));
    }

    #[test]
    fn trace_describe_numbers_steps() {
        let t = ActionTrace::from_actions(vec![
            Action::Click(TargetRef::Label("New issue".into())),
            Action::Type {
                target: Some(TargetRef::Label("Title".into())),
                text: "Bug".into(),
            },
        ]);
        let d = t.describe();
        assert!(d.starts_with("1. Click"));
        assert!(d.contains("\n2. Type"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn target_extraction() {
        let a = Action::Type {
            target: Some(TargetRef::Name("q".into())),
            text: "hi".into(),
        };
        assert_eq!(a.target(), Some(&TargetRef::Name("q".into())));
        assert_eq!(Action::Press(Key::Tab).target(), None);
    }
}

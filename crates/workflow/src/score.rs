//! SOP scoring: the Table 1 metrics.
//!
//! Given a generated SOP and the human-written reference, compute
//! * **precision** — "what percent of steps in the generated SOP are in the
//!   true SOP?";
//! * **recall** — "what percent of steps in the true SOP are in the
//!   generated SOP?";
//! * **missing** — reference steps with no generated counterpart;
//! * **incorrect** — generated steps with no reference counterpart
//!   (hallucinations);
//! * **total** — generated step count.
//!
//! Matching is a greedy best-first bipartite assignment on
//! [`crate::matcher::step_similarity`], each step usable once — mirroring
//! how an annotator ticks off steps against the reference.

use serde::{Deserialize, Serialize};

use crate::matcher::{step_similarity, MATCH_THRESHOLD};
use crate::sop::Sop;

/// Scoring result for one generated SOP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SopScore {
    /// Reference steps not covered by any generated step.
    pub missing: usize,
    /// Generated steps matching no reference step.
    pub incorrect: usize,
    /// Number of generated steps.
    pub total: usize,
    /// Matched generated steps / total generated steps.
    pub precision: f64,
    /// Matched reference steps / total reference steps.
    pub recall: f64,
}

impl SopScore {
    /// F1 of precision/recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Greedy best-first matching of generated steps to reference steps.
/// Returns `(gen_idx, ref_idx, similarity)` for each match made.
pub fn match_steps(generated: &Sop, reference: &Sop) -> Vec<(usize, usize, f64)> {
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for (gi, g) in generated.steps.iter().enumerate() {
        for (ri, r) in reference.steps.iter().enumerate() {
            let sim = step_similarity(&g.text, &r.text);
            if sim >= MATCH_THRESHOLD {
                pairs.push((gi, ri, sim));
            }
        }
    }
    // Highest similarity first; ties broken by position for determinism.
    pairs.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("similarities are finite")
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut gen_used = vec![false; generated.len()];
    let mut ref_used = vec![false; reference.len()];
    let mut matches = Vec::new();
    for (gi, ri, sim) in pairs {
        if !gen_used[gi] && !ref_used[ri] {
            gen_used[gi] = true;
            ref_used[ri] = true;
            matches.push((gi, ri, sim));
        }
    }
    matches
}

/// Score a generated SOP against the reference.
pub fn score_sop(generated: &Sop, reference: &Sop) -> SopScore {
    let matches = match_steps(generated, reference);
    let matched = matches.len();
    let total = generated.len();
    let missing = reference.len() - matched.min(reference.len());
    let incorrect = total - matched.min(total);
    SopScore {
        missing,
        incorrect,
        total,
        precision: if total == 0 {
            0.0
        } else {
            matched as f64 / total as f64
        },
        recall: if reference.is_empty() {
            0.0
        } else {
            matched as f64 / reference.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Sop {
        Sop::from_texts(
            "Create issue",
            &[
                "Click the 'Issues' link in the sidebar",
                "Click the 'New issue' button",
                "Type \"Login broken\" into the Title field",
                "Click the 'Create issue' button",
            ],
        )
    }

    #[test]
    fn identical_sop_scores_perfectly() {
        let r = reference();
        let s = score_sop(&r, &r);
        assert_eq!(s.missing, 0);
        assert_eq!(s.incorrect, 0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn paraphrased_sop_still_matches() {
        let gen = Sop::from_texts(
            "Create issue",
            &[
                "Open Issues from the sidebar",
                "Press New issue",
                "Enter Login broken in Title",
                "Press Create issue",
            ],
        );
        let s = score_sop(&gen, &reference());
        assert!(s.recall >= 0.75, "recall {s:?}");
        assert!(s.precision >= 0.75, "precision {s:?}");
    }

    #[test]
    fn hallucinated_steps_count_incorrect() {
        let gen = Sop::from_texts(
            "Create issue",
            &[
                "Click the 'Issues' link in the sidebar",
                "Log in with your credentials",
                "Click the 'New issue' button",
                "Type \"Login broken\" into the Title field",
                "Select the project from the dropdown",
                "Click the 'Create issue' button",
            ],
        );
        let s = score_sop(&gen, &reference());
        assert_eq!(s.incorrect, 2, "{s:?}");
        assert_eq!(s.missing, 0);
        assert!((s.precision - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_steps_count_missing() {
        let gen = Sop::from_texts(
            "Create issue",
            &[
                "Click the 'New issue' button",
                "Click the 'Create issue' button",
            ],
        );
        let s = score_sop(&gen, &reference());
        assert_eq!(s.missing, 2);
        assert_eq!(s.incorrect, 0);
        assert_eq!(s.recall, 0.5);
        assert_eq!(s.precision, 1.0);
    }

    #[test]
    fn each_reference_step_matched_once() {
        // Two generated copies of the same step cannot both match one
        // reference step.
        let gen = Sop::from_texts(
            "t",
            &[
                "Click the 'New issue' button",
                "Click the 'New issue' button",
            ],
        );
        let s = score_sop(&gen, &reference());
        assert_eq!(s.incorrect, 1, "duplicate counts as hallucination: {s:?}");
    }

    #[test]
    fn empty_generated_sop() {
        let s = score_sop(&Sop::new("x"), &reference());
        assert_eq!(s.total, 0);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.missing, 4);
    }

    #[test]
    fn matching_is_deterministic() {
        let gen = Sop::from_texts("t", &["Press New issue", "Enter Login broken in Title"]);
        let a = match_steps(&gen, &reference());
        let b = match_steps(&gen, &reference());
        assert_eq!(a, b);
    }
}

//! The workflow taxonomy of the paper's Figure 2.
//!
//! Figure 2 classifies workflows along three axes — *enumerable sequence of
//! steps*, *decision making*, *knowledge intensive* — and shows which
//! bracket of technology can automate each category: plain rule systems and
//! RPA cover only fully-enumerable, decision-free workflows, while ECLAIR
//! extends coverage to decision-heavy and knowledge-intensive ones.

use serde::{Deserialize, Serialize};

/// Intensity of a requirement axis (the figure's ✗ / ~ / ✓).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Not required (✗).
    None,
    /// Somewhat required (~).
    Some,
    /// Heavily required (✓).
    Heavy,
}

impl Level {
    /// The figure's glyph.
    pub fn glyph(&self) -> &'static str {
        match self {
            Level::None => "x",
            Level::Some => "~",
            Level::Heavy => "v",
        }
    }
}

/// Which class of automation technology can take a workflow end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AutomationTech {
    /// Hard-coded rules / traditional RPA suffice.
    Rpa,
    /// Needs FM-based automation (ECLAIR's target band).
    Eclair,
    /// Not automatable end-to-end (no enumerable procedure at all).
    HumanOnly,
}

/// A workflow's position in the Figure 2 space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowProfile {
    /// Short workflow name.
    pub name: String,
    /// Can the workflow be written down as an enumerable sequence of steps?
    pub enumerable_steps: bool,
    /// How much in-flight decision making does it need?
    pub decision_making: Level,
    /// How much tacit domain knowledge does it need?
    pub knowledge_intensive: Level,
}

impl WorkflowProfile {
    /// Construct a profile.
    pub fn new(
        name: impl Into<String>,
        enumerable_steps: bool,
        decision_making: Level,
        knowledge_intensive: Level,
    ) -> Self {
        Self {
            name: name.into(),
            enumerable_steps,
            decision_making,
            knowledge_intensive,
        }
    }

    /// The minimal technology bracket able to automate this workflow —
    /// Figure 2's bracketing rule.
    pub fn minimal_tech(&self) -> AutomationTech {
        if !self.enumerable_steps {
            return AutomationTech::HumanOnly;
        }
        if self.decision_making == Level::None && self.knowledge_intensive == Level::None {
            AutomationTech::Rpa
        } else {
            AutomationTech::Eclair
        }
    }

    /// Whether ECLAIR's bracket covers the workflow (it covers everything
    /// RPA covers, plus the decision/knowledge band).
    pub fn eclair_can_automate(&self) -> bool {
        self.enumerable_steps
    }

    /// Whether traditional RPA's bracket covers the workflow.
    pub fn rpa_can_automate(&self) -> bool {
        self.minimal_tech() == AutomationTech::Rpa
    }
}

/// The five real hospital workflows listed in Figure 2, with the paper's
/// axis markings.
pub fn figure2_examples() -> Vec<WorkflowProfile> {
    vec![
        WorkflowProfile::new(
            "Sending a templated post-visit follow-up email",
            true,
            Level::None,
            Level::None,
        ),
        WorkflowProfile::new(
            "Digitizing insurance claim documents",
            true,
            Level::None,
            Level::None,
        ),
        WorkflowProfile::new(
            "Verifying a patient's insurance eligibility",
            true,
            Level::Some,
            Level::None,
        ),
        WorkflowProfile::new(
            "Ordering proper medication dosages",
            true,
            Level::Some,
            Level::Some,
        ),
        WorkflowProfile::new(
            "Coordinating post-surgery recovery plan",
            true,
            Level::Some,
            Level::Some,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_bracketing_matches_paper() {
        let rows = figure2_examples();
        assert_eq!(rows.len(), 5);
        // Rows 1-2: RPA bracket. Rows 3-5: ECLAIR-only.
        assert_eq!(rows[0].minimal_tech(), AutomationTech::Rpa);
        assert_eq!(rows[1].minimal_tech(), AutomationTech::Rpa);
        for row in &rows[2..] {
            assert_eq!(row.minimal_tech(), AutomationTech::Eclair, "{}", row.name);
        }
        // ECLAIR covers everything in the figure.
        assert!(rows.iter().all(WorkflowProfile::eclair_can_automate));
        // RPA covers only the first two.
        assert_eq!(rows.iter().filter(|r| r.rpa_can_automate()).count(), 2);
    }

    #[test]
    fn non_enumerable_work_is_human_only() {
        let w = WorkflowProfile::new("Novel research", false, Level::Heavy, Level::Heavy);
        assert_eq!(w.minimal_tech(), AutomationTech::HumanOnly);
        assert!(!w.eclair_can_automate());
    }

    #[test]
    fn levels_order_and_glyphs() {
        assert!(Level::None < Level::Some);
        assert!(Level::Some < Level::Heavy);
        assert_eq!(Level::Some.glyph(), "~");
    }
}

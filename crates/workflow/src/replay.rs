//! The oracle executor: semantic actions → raw events with *perfect*
//! grounding.
//!
//! Gold traces, the RPA bot, and the demonstration recorder all need to
//! actually drive the GUI. The oracle resolves a [`TargetRef`] against the
//! live page (which agents are forbidden from touching), scrolls the target
//! into view, and emits clicks at exact centers. Comparing ECLAIR's
//! FM-grounded execution to this oracle isolates the grounding gap that
//! Table 2 documents.

use eclair_gui::event::EffectKind;
use eclair_gui::{Point, Session, UserEvent, WidgetId};
use serde::{Deserialize, Serialize};

use crate::action::{Action, TargetRef};

/// Why the oracle could not perform an action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayError {
    /// No widget matches the target reference on the current page.
    TargetNotFound(String),
    /// The widget exists but is not interactive/enabled/visible.
    TargetNotActionable(String),
    /// The dispatched event had no effect (e.g. typing with no focus).
    NoEffect(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::TargetNotFound(t) => write!(f, "target not found: {t}"),
            ReplayError::TargetNotActionable(t) => write!(f, "target not actionable: {t}"),
            ReplayError::NoEffect(d) => write!(f, "event had no effect: {d}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Which widget family an action prefers when a label is ambiguous. Real
/// pages reuse text (a field caption and a button may both say "Search");
/// the oracle disambiguates by intent, as a human demonstrator would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindPref {
    /// Prefer buttons/links/menu items (for clicks meant to activate).
    Activatable,
    /// Prefer inputs/selects (for typing).
    Editable,
    /// No preference.
    Any,
}

/// Resolve a target reference to a widget on the current page.
pub fn resolve(session: &Session, target: &TargetRef) -> Option<WidgetId> {
    resolve_pref(session, target, KindPref::Any)
}

/// Resolve with a kind preference for ambiguous labels.
pub fn resolve_pref(session: &Session, target: &TargetRef, pref: KindPref) -> Option<WidgetId> {
    let page = session.page();
    match target {
        TargetRef::Name(n) => page.find_by_name(n),
        TargetRef::Label(l) => {
            let candidates = page.find_all_by_label(l);
            let pick = |pred: &dyn Fn(eclair_gui::WidgetKind) -> bool| {
                candidates
                    .iter()
                    .copied()
                    .find(|&id| pred(page.get(id).kind))
            };
            match pref {
                KindPref::Activatable => {
                    pick(&|k| k.is_activatable()).or_else(|| pick(&|k| k.is_interactive()))
                }
                KindPref::Editable => {
                    pick(&|k| k.is_editable()).or_else(|| pick(&|k| k.is_interactive()))
                }
                KindPref::Any => pick(&|k| k.is_interactive()),
            }
            .or_else(|| candidates.first().copied())
        }
        TargetRef::Point(p) => page.hit_test(p.offset(0, session.scroll_y())),
    }
}

/// The viewport-space click point the oracle would use for a target.
pub fn click_point(session: &mut Session, target: &TargetRef) -> Result<Point, ReplayError> {
    click_point_pref(session, target, KindPref::Activatable)
}

/// As [`click_point`], with an explicit kind preference.
pub fn click_point_pref(
    session: &mut Session,
    target: &TargetRef,
    pref: KindPref,
) -> Result<Point, ReplayError> {
    match target {
        TargetRef::Point(p) => Ok(*p),
        _ => {
            let id = resolve_pref(session, target, pref)
                .ok_or_else(|| ReplayError::TargetNotFound(target.describe()))?;
            if !session.page().is_shown(id) || !session.page().get(id).enabled {
                return Err(ReplayError::TargetNotActionable(target.describe()));
            }
            session.scroll_into_view(id);
            Ok(session
                .page()
                .get(id)
                .bounds
                .center()
                .offset(0, -session.scroll_y()))
        }
    }
}

/// Execute one semantic action with oracle grounding. Returns the raw
/// events that were dispatched.
pub fn execute(session: &mut Session, action: &Action) -> Result<Vec<UserEvent>, ReplayError> {
    let mut events = Vec::new();
    match action {
        Action::Click(target) => {
            let pt = click_point(session, target)?;
            let ev = UserEvent::Click(pt);
            let d = session.dispatch(ev.clone());
            events.push(ev);
            if d.effect == EffectKind::NoOp {
                return Err(ReplayError::NoEffect(action.describe()));
            }
        }
        Action::Type { target, text } => {
            if let Some(target) = target {
                // Decomposition: focus first, then type.
                let pt = click_point_pref(session, target, KindPref::Editable)?;
                let ev = UserEvent::Click(pt);
                let d = session.dispatch(ev.clone());
                events.push(ev);
                if d.effect != EffectKind::Focused {
                    return Err(ReplayError::TargetNotActionable(target.describe()));
                }
            }
            let ev = UserEvent::Type(text.clone());
            let d = session.dispatch(ev.clone());
            events.push(ev);
            if d.effect == EffectKind::NoOp {
                return Err(ReplayError::NoEffect(action.describe()));
            }
        }
        Action::Replace { target, text } => {
            let pt = click_point_pref(session, target, KindPref::Editable)?;
            let ev = UserEvent::Click(pt);
            let d = session.dispatch(ev.clone());
            events.push(ev);
            if d.effect != EffectKind::Focused {
                return Err(ReplayError::TargetNotActionable(target.describe()));
            }
            // Clear: backspace until the field is empty (bounded).
            for _ in 0..300 {
                let done = resolve_pref(session, target, KindPref::Editable)
                    .map(|id| session.page().get(id).value.is_empty())
                    .unwrap_or(true);
                if done {
                    break;
                }
                let ev = UserEvent::Press(eclair_gui::Key::Backspace);
                session.dispatch(ev.clone());
                events.push(ev);
            }
            let ev = UserEvent::Type(text.clone());
            let d = session.dispatch(ev.clone());
            events.push(ev);
            if d.effect == EffectKind::NoOp {
                return Err(ReplayError::NoEffect(action.describe()));
            }
        }
        Action::Press(k) => {
            let ev = UserEvent::Press(*k);
            session.dispatch(ev.clone());
            events.push(ev);
        }
        Action::Scroll(dy) => {
            let ev = UserEvent::Scroll(*dy);
            session.dispatch(ev.clone());
            events.push(ev);
        }
    }
    Ok(events)
}

/// Execute a whole trace; stops at the first failure.
pub fn execute_trace(
    session: &mut Session,
    actions: &[Action],
) -> Result<Vec<UserEvent>, (usize, ReplayError)> {
    let mut all = Vec::new();
    for (i, a) in actions.iter().enumerate() {
        match execute(session, a) {
            Ok(evs) => all.extend(evs),
            Err(e) => return Err((i, e)),
        }
    }
    Ok(all)
}

/// Flatten a trace into the raw events it *would* dispatch, by executing it
/// on the session (needed because grounding depends on evolving state).
/// This is how demonstrations are realized for recording.
pub fn realize_events(
    session: &mut Session,
    actions: &[Action],
) -> Result<Vec<UserEvent>, (usize, ReplayError)> {
    execute_trace(session, actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{GuiApp, Key, Page, PageBuilder, SemanticEvent};

    struct SearchApp {
        query: Option<String>,
    }
    impl GuiApp for SearchApp {
        fn name(&self) -> &str {
            "search"
        }
        fn url(&self) -> String {
            match &self.query {
                Some(q) => format!("/results?q={q}"),
                None => "/search".into(),
            }
        }
        fn build(&self) -> Page {
            match &self.query {
                Some(q) => {
                    let mut b = PageBuilder::new("Results", self.url());
                    b.heading(1, format!("Results for {q}"));
                    b.finish()
                }
                None => {
                    let mut b = PageBuilder::new("Search", "/search");
                    b.form("search-form", |b| {
                        b.text_input("q", "Search", "type query");
                        b.button("go", "Search");
                    });
                    b.finish()
                }
            }
        }
        fn on_event(&mut self, ev: SemanticEvent) -> bool {
            if let SemanticEvent::Activated { name, fields, .. } = ev {
                if name == "go" {
                    self.query = fields.into_iter().find(|(n, _)| n == "q").map(|(_, v)| v);
                    return true;
                }
            }
            false
        }
    }

    fn session() -> Session {
        Session::new(Box::new(SearchApp { query: None }))
    }

    #[test]
    fn oracle_executes_full_trace() {
        let mut s = session();
        let trace = vec![
            Action::Type {
                target: Some(TargetRef::Name("q".into())),
                text: "dashboards".into(),
            },
            Action::Click(TargetRef::Label("Search".into())),
        ];
        let events = execute_trace(&mut s, &trace).expect("trace succeeds");
        assert_eq!(s.url(), "/results?q=dashboards");
        assert_eq!(events.len(), 3, "click-focus + type + click");
    }

    #[test]
    fn label_resolution_disambiguates_by_intent() {
        // The input and the button both carry the label "Search": clicks
        // must resolve to the button, typing to the input.
        let s = session();
        let click_id = resolve_pref(
            &s,
            &TargetRef::Label("Search".into()),
            KindPref::Activatable,
        )
        .unwrap();
        assert!(s.page().get(click_id).kind.is_activatable());
        let type_id =
            resolve_pref(&s, &TargetRef::Label("Search".into()), KindPref::Editable).unwrap();
        assert!(s.page().get(type_id).kind.is_editable());
        assert_ne!(click_id, type_id);
    }

    #[test]
    fn missing_target_errors() {
        let mut s = session();
        let err = execute(&mut s, &Action::Click(TargetRef::Name("nope".into()))).unwrap_err();
        assert!(matches!(err, ReplayError::TargetNotFound(_)));
    }

    #[test]
    fn typing_without_focus_reports_no_effect() {
        let mut s = session();
        let err = execute(
            &mut s,
            &Action::Type {
                target: None,
                text: "orphan".into(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, ReplayError::NoEffect(_)));
    }

    #[test]
    fn enter_submits_via_press() {
        let mut s = session();
        execute(
            &mut s,
            &Action::Type {
                target: Some(TargetRef::Name("q".into())),
                text: "reports".into(),
            },
        )
        .unwrap();
        execute(&mut s, &Action::Press(Key::Enter)).unwrap();
        assert_eq!(s.url(), "/results?q=reports");
    }

    #[test]
    fn trace_failure_reports_index() {
        let mut s = session();
        let trace = vec![
            Action::Click(TargetRef::Name("q".into())),
            Action::Click(TargetRef::Name("missing-button".into())),
        ];
        let (idx, err) = execute_trace(&mut s, &trace).unwrap_err();
        assert_eq!(idx, 1);
        assert!(matches!(err, ReplayError::TargetNotFound(_)));
    }

    #[test]
    fn disabled_target_not_actionable() {
        struct DisabledApp;
        impl GuiApp for DisabledApp {
            fn name(&self) -> &str {
                "d"
            }
            fn url(&self) -> String {
                "/d".into()
            }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("d", "/d");
                let id = b.button("locked", "Locked");
                let mut p = b.finish();
                p.get_mut(id).enabled = false;
                p.relayout();
                p
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool {
                false
            }
        }
        let mut s = Session::new(Box::new(DisabledApp));
        let err = execute(&mut s, &Action::Click(TargetRef::Name("locked".into()))).unwrap_err();
        assert!(matches!(err, ReplayError::TargetNotActionable(_)));
    }
}

//! Standard Operating Procedures (SOPs).
//!
//! Paper §2.2: workers "follow a standard operating procedure ('SOP'), a
//! form of written documentation which outlines all of the steps and
//! actions of the workflow". SOPs are the paper's central scaffold: they
//! are what Demonstrate generates (Table 1) and what doubles Execute's
//! completion rate (Table 2).

use serde::{Deserialize, Serialize};

use crate::action::Action;

/// One numbered step of an SOP: free-form text, optionally carrying the
/// structured action it was derived from (gold SOPs have one; generated
/// SOPs may not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SopStep {
    /// 1-based position.
    pub index: usize,
    /// The instruction text ("Click the 'New issue' button").
    pub text: String,
    /// Structured action hint when known.
    pub action: Option<Action>,
    /// Whether a human must perform/approve this step (the paper's §5
    /// human-in-the-loop marking: "the SOP could mark steps where the model
    /// transfers control to a human").
    pub human_gate: bool,
}

impl SopStep {
    /// A plain text step.
    pub fn new(index: usize, text: impl Into<String>) -> Self {
        Self {
            index,
            text: text.into(),
            action: None,
            human_gate: false,
        }
    }

    /// A step derived from a structured action.
    pub fn from_action(index: usize, action: Action) -> Self {
        Self {
            index,
            text: action.describe(),
            action: Some(action),
            human_gate: false,
        }
    }

    /// Mark as requiring human sign-off.
    pub fn gated(mut self) -> Self {
        self.human_gate = true;
        self
    }
}

/// A complete SOP.
///
/// ```
/// use eclair_workflow::Sop;
///
/// let sop = Sop::from_texts("Create an issue", &[
///     "Click the 'New issue' button",
///     "Type \"Login broken\" into the Title field",
/// ]);
/// let round_tripped = Sop::parse(&sop.format());
/// assert_eq!(round_tripped.len(), 2);
/// assert_eq!(round_tripped.title, "Create an issue");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Sop {
    /// The workflow this SOP documents.
    pub title: String,
    /// Ordered steps.
    pub steps: Vec<SopStep>,
}

impl Sop {
    /// An empty SOP with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            steps: Vec::new(),
        }
    }

    /// Build from step texts.
    pub fn from_texts(title: impl Into<String>, texts: &[&str]) -> Self {
        Self {
            title: title.into(),
            steps: texts
                .iter()
                .enumerate()
                .map(|(i, t)| SopStep::new(i + 1, *t))
                .collect(),
        }
    }

    /// Build from a gold action trace.
    pub fn from_actions(title: impl Into<String>, actions: &[Action]) -> Self {
        Self {
            title: title.into(),
            steps: actions
                .iter()
                .enumerate()
                .map(|(i, a)| SopStep::from_action(i + 1, a.clone()))
                .collect(),
        }
    }

    /// Append a step, renumbering automatically.
    pub fn push(&mut self, text: impl Into<String>) -> &mut SopStep {
        let idx = self.steps.len() + 1;
        self.steps.push(SopStep::new(idx, text));
        self.steps.last_mut().expect("just pushed")
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether there are no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Render in the canonical numbered format.
    pub fn format(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("SOP: {}\n", self.title));
        }
        for s in &self.steps {
            let gate = if s.human_gate { " [HUMAN]" } else { "" };
            out.push_str(&format!("{}. {}{}\n", s.index, s.text, gate));
        }
        out
    }

    /// Parse the canonical numbered format back into an SOP. Unnumbered
    /// lines are ignored except an optional `SOP: <title>` header. Step
    /// numbering in the input is not trusted; steps are renumbered.
    pub fn parse(text: &str) -> Sop {
        let mut sop = Sop::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(title) = line.strip_prefix("SOP:") {
                sop.title = title.trim().to_string();
                continue;
            }
            // Accept "3. text", "3) text", "- text".
            let body = line
                .split_once(". ")
                .filter(|(n, _)| n.chars().all(|c| c.is_ascii_digit()))
                .map(|(_, b)| b)
                .or_else(|| {
                    line.split_once(") ")
                        .filter(|(n, _)| n.chars().all(|c| c.is_ascii_digit()))
                        .map(|(_, b)| b)
                })
                .or_else(|| line.strip_prefix("- "));
            if let Some(body) = body {
                let human_gate = body.ends_with("[HUMAN]");
                let body = body.trim_end_matches("[HUMAN]").trim();
                let idx = sop.steps.len() + 1;
                let mut step = SopStep::new(idx, body);
                step.human_gate = human_gate;
                sop.steps.push(step);
            }
        }
        sop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::TargetRef;

    #[test]
    fn format_parse_round_trip() {
        let mut sop = Sop::new("Create an issue");
        sop.push("Click 'New issue'");
        sop.push("Type \"Bug\" into the Title field");
        sop.steps[1].human_gate = true;
        let text = sop.format();
        let back = Sop::parse(&text);
        assert_eq!(back.title, "Create an issue");
        assert_eq!(back.len(), 2);
        assert_eq!(back.steps[0].text, "Click 'New issue'");
        assert!(back.steps[1].human_gate);
    }

    #[test]
    fn parse_accepts_multiple_formats() {
        let sop = Sop::parse("1) First step\n- Second step\n17. Third step\nnoise line\n");
        assert_eq!(sop.len(), 3);
        assert_eq!(sop.steps[2].index, 3, "renumbered");
        assert_eq!(sop.steps[1].text, "Second step");
    }

    #[test]
    fn from_actions_carries_structure() {
        let sop = Sop::from_actions("t", &[Action::Click(TargetRef::Label("Save".into()))]);
        assert_eq!(sop.steps[0].text, "Click 'Save'");
        assert!(sop.steps[0].action.is_some());
    }

    #[test]
    fn push_renumbers() {
        let mut sop = Sop::new("x");
        sop.push("a");
        sop.push("b");
        assert_eq!(sop.steps[1].index, 2);
    }

    #[test]
    fn empty_parse_is_empty() {
        let sop = Sop::parse("\n\n");
        assert!(sop.is_empty());
        assert_eq!(sop.format(), "");
    }
}

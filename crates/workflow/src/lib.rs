//! # eclair-workflow
//!
//! The workflow data model of the ECLAIR reproduction — the vocabulary
//! shared by the agent, the RPA baseline, the simulated sites, and every
//! experiment harness.
//!
//! * [`action`] — semantic actions (`Click "New issue"`, `Type "bug" into
//!   Title`) and traces; the alternating (s, a, s′, ...) structure of paper
//!   §2.2;
//! * [`replay`] — the *oracle* executor: resolves semantic actions against a
//!   live session with perfect grounding (used to realize gold traces and
//!   as the RPA bot's actuator);
//! * [`sop`] — Standard Operating Procedures: numbered natural-language
//!   steps, parsing and formatting;
//! * [`matcher`] — semantic step equivalence (verb classes + token overlap),
//!   standing in for the paper's human annotators;
//! * [`score`] — Table 1's SOP metrics: missing/incorrect step counts,
//!   precision, recall;
//! * [`constraints`] — the integrity-constraint language of §4.3.1 ("a
//!   button must be visible and not disabled"), with oracle evaluation;
//! * [`category`] — Figure 2's workflow taxonomy (enumerable steps ×
//!   decision making × knowledge intensity → which technology can automate
//!   it).

pub mod action;
pub mod category;
pub mod constraints;
pub mod matcher;
pub mod replay;
pub mod score;
pub mod sop;

pub use action::{Action, ActionTrace, TargetRef};
pub use category::{AutomationTech, Level, WorkflowProfile};
pub use constraints::{Constraint, IntegrityConstraint};
pub use sop::{Sop, SopStep};

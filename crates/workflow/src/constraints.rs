//! Integrity constraints over GUI states.
//!
//! Paper §4.3.1, "inspired by prior work on data cleaning": *"we create a
//! set of 'integrity constraints' defining whether an action is viable at a
//! particular state. For example, an 'integrity constraint' for clicking a
//! button is that the button is visible and not disabled."*
//!
//! Constraints are evaluated two ways:
//! * **oracle** ([`IntegrityConstraint::holds_oracle`]) — against the live
//!   session, with full knowledge of focus/enabled/visibility; this labels
//!   the ground truth;
//! * **visual** (in `eclair-core::validate`) — from a static screenshot,
//!   which is all the FM gets; the gap between the two *is* the paper's
//!   low integrity-constraint recall.

use serde::{Deserialize, Serialize};

use eclair_gui::Session;

use crate::action::{Action, TargetRef};

/// One atomic predicate over a GUI state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// The referenced widget is rendered (itself and all ancestors).
    Visible(String),
    /// The referenced widget accepts interaction.
    Enabled(String),
    /// The referenced widget currently has keyboard focus.
    Focused(String),
    /// No modal dialog is intercepting input.
    NoModal,
    /// The current URL contains this substring.
    UrlContains(String),
    /// The referenced widget is inside the current viewport (not scrolled
    /// away).
    InViewport(String),
}

impl Constraint {
    /// Human-readable rendering.
    pub fn describe(&self) -> String {
        match self {
            Constraint::Visible(t) => format!("'{t}' is visible"),
            Constraint::Enabled(t) => format!("'{t}' is enabled"),
            Constraint::Focused(t) => format!("'{t}' is focused"),
            Constraint::NoModal => "no modal dialog is open".to_string(),
            Constraint::UrlContains(u) => format!("URL contains '{u}'"),
            Constraint::InViewport(t) => format!("'{t}' is on screen"),
        }
    }

    fn find(session: &Session, target: &str) -> Option<eclair_gui::WidgetId> {
        session
            .page()
            .find_by_name(target)
            .or_else(|| session.page().find_by_label(target, true))
            .or_else(|| session.page().find_by_label(target, false))
    }

    /// Oracle evaluation against the live session.
    pub fn holds_oracle(&self, session: &Session) -> bool {
        match self {
            Constraint::Visible(t) => Self::find(session, t)
                .map(|id| session.page().is_shown(id))
                .unwrap_or(false),
            Constraint::Enabled(t) => Self::find(session, t)
                .map(|id| session.page().get(id).enabled && session.page().is_shown(id))
                .unwrap_or(false),
            Constraint::Focused(t) => {
                if t.is_empty() {
                    // Anonymous focus requirement ("some field is focused").
                    session.focus().is_some()
                } else {
                    match (Self::find(session, t), session.focus()) {
                        (Some(id), Some(f)) => id == f,
                        _ => false,
                    }
                }
            }
            Constraint::NoModal => session.page().active_modal().is_none(),
            Constraint::UrlContains(u) => session.url().contains(u.as_str()),
            Constraint::InViewport(t) => Self::find(session, t)
                .map(|id| {
                    let b = session.page().get(id).bounds;
                    let top = session.scroll_y();
                    let bottom = top + eclair_gui::VIEWPORT.h as i32;
                    session.page().is_shown(id) && b.bottom() > top && b.y < bottom
                })
                .unwrap_or(false),
        }
    }

    /// Whether checking this constraint requires information a static
    /// screenshot does not reliably carry (focus; enabled is partially
    /// visible via gray-out; modal presence is visible).
    pub fn visually_observable(&self) -> bool {
        !matches!(self, Constraint::Focused(_))
    }
}

/// The precondition set for one action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegrityConstraint {
    /// Description of the action this constraint gates.
    pub action_desc: String,
    /// All predicates must hold for the action to be viable.
    pub preds: Vec<Constraint>,
}

impl IntegrityConstraint {
    /// Oracle evaluation: every predicate holds.
    pub fn holds_oracle(&self, session: &Session) -> bool {
        self.preds.iter().all(|p| p.holds_oracle(session))
    }

    /// Human-readable rendering ("before 'Click Save': 'Save' is visible;
    /// 'Save' is enabled").
    pub fn describe(&self) -> String {
        format!(
            "before '{}': {}",
            self.action_desc,
            self.preds
                .iter()
                .map(Constraint::describe)
                .collect::<Vec<_>>()
                .join("; ")
        )
    }

    /// Derive the canonical constraint set for a semantic action — the
    /// "repository of integrity constraints" the paper's §5 proposes.
    pub fn for_action(action: &Action) -> IntegrityConstraint {
        let mut preds = vec![Constraint::NoModal];
        match action {
            Action::Click(t) => {
                if let Some(name) = target_key(t) {
                    preds.push(Constraint::Visible(name.clone()));
                    preds.push(Constraint::Enabled(name.clone()));
                    preds.push(Constraint::InViewport(name));
                }
            }
            Action::Replace { target, .. } => {
                if let Some(name) = target_key(target) {
                    preds.push(Constraint::Visible(name.clone()));
                    preds.push(Constraint::Enabled(name));
                }
            }
            Action::Type { target, .. } => match target {
                Some(t) => {
                    if let Some(name) = target_key(t) {
                        preds.push(Constraint::Visible(name.clone()));
                        preds.push(Constraint::Enabled(name));
                    }
                }
                None => {
                    // Typing blind requires *something* focused; the
                    // constraint names no widget so it reads "a field is
                    // focused" — encoded as Focused("").
                    preds.push(Constraint::Focused(String::new()));
                }
            },
            Action::Press(_) | Action::Scroll(_) => {}
        }
        IntegrityConstraint {
            action_desc: action.describe(),
            preds,
        }
    }
}

fn target_key(t: &TargetRef) -> Option<String> {
    match t {
        TargetRef::Label(l) => Some(l.clone()),
        TargetRef::Name(n) => Some(n.clone()),
        TargetRef::Point(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent, UserEvent};

    struct App {
        modal: bool,
    }
    impl GuiApp for App {
        fn name(&self) -> &str {
            "c"
        }
        fn url(&self) -> String {
            "/settings/profile".into()
        }
        fn build(&self) -> Page {
            let mut b = PageBuilder::new("c", "/settings/profile");
            b.form("f", |b| {
                b.text_input("email", "Email", "");
                b.button("save", "Save");
            });
            let locked = b.button("locked", "Locked action");
            if self.modal {
                b.modal("warn", |b| {
                    b.text("Warning!");
                    b.button("ok", "OK");
                });
            }
            let mut p = b.finish();
            p.get_mut(locked).enabled = false;
            p.relayout();
            p
        }
        fn on_event(&mut self, _: SemanticEvent) -> bool {
            false
        }
    }

    fn session(modal: bool) -> Session {
        Session::new(Box::new(App { modal }))
    }

    #[test]
    fn visible_and_enabled_oracle() {
        let s = session(false);
        assert!(Constraint::Visible("Save".into()).holds_oracle(&s));
        assert!(Constraint::Enabled("save".into()).holds_oracle(&s));
        assert!(Constraint::Visible("Locked action".into()).holds_oracle(&s));
        assert!(!Constraint::Enabled("locked".into()).holds_oracle(&s));
        assert!(!Constraint::Visible("Nonexistent".into()).holds_oracle(&s));
    }

    #[test]
    fn focus_constraint_tracks_session_focus() {
        let mut s = session(false);
        assert!(!Constraint::Focused("email".into()).holds_oracle(&s));
        let id = s.page().find_by_name("email").unwrap();
        let pt = s.page().get(id).bounds.center();
        s.dispatch(UserEvent::Click(pt));
        assert!(Constraint::Focused("email".into()).holds_oracle(&s));
        assert!(!Constraint::Focused("save".into()).holds_oracle(&s));
    }

    #[test]
    fn modal_constraint() {
        let with = session(true);
        let without = session(false);
        assert!(!Constraint::NoModal.holds_oracle(&with));
        assert!(Constraint::NoModal.holds_oracle(&without));
    }

    #[test]
    fn url_constraint() {
        let s = session(false);
        assert!(Constraint::UrlContains("settings".into()).holds_oracle(&s));
        assert!(!Constraint::UrlContains("billing".into()).holds_oracle(&s));
    }

    #[test]
    fn for_action_click_derives_canonical_preds() {
        let ic = IntegrityConstraint::for_action(&Action::Click(TargetRef::Label("Save".into())));
        assert!(ic.preds.contains(&Constraint::NoModal));
        assert!(ic.preds.contains(&Constraint::Visible("Save".into())));
        assert!(ic.preds.contains(&Constraint::Enabled("Save".into())));
        let s = session(false);
        assert!(ic.holds_oracle(&s));
    }

    #[test]
    fn blind_typing_requires_focus() {
        let ic = IntegrityConstraint::for_action(&Action::Type {
            target: None,
            text: "x".into(),
        });
        assert!(ic.preds.iter().any(|p| matches!(p, Constraint::Focused(_))));
        let s = session(false);
        assert!(!ic.holds_oracle(&s), "nothing focused yet");
    }

    #[test]
    fn focused_is_the_only_visually_hidden_predicate() {
        assert!(!Constraint::Focused("x".into()).visually_observable());
        assert!(Constraint::Visible("x".into()).visually_observable());
        assert!(Constraint::NoModal.visually_observable());
    }

    #[test]
    fn describe_is_informative() {
        let ic = IntegrityConstraint::for_action(&Action::Click(TargetRef::Label("Save".into())));
        let d = ic.describe();
        assert!(d.contains("Click 'Save'"));
        assert!(d.contains("is enabled"));
    }
}

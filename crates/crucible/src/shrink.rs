//! Delta-debugging minimizer: from a violating scenario to the smallest
//! one that still violates, plus a paste-ready regression test.
//!
//! The shrinker is oracle-agnostic: it takes the violation as a predicate
//! over scenarios (normally "re-run and re-evaluate the registry; does
//! the same oracle still fire?") and greedily applies reduction passes to
//! a fixpoint — fewer tasks first (halves, then single drops, the ddmin
//! schedule), then a lower chaos rate (off, else repeated halving), then
//! dropped budgets, then a single attempt, then a single worker. Every
//! candidate is a full deterministic re-execution, so the result is not a
//! guess: the minimized scenario provably still violates.

use crate::scenario::Scenario;

/// What the shrinker produced.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest still-violating scenario found.
    pub minimal: Scenario,
    /// Predicate evaluations spent (each one is a scenario execution).
    pub evals: usize,
    /// Whether any pass improved on the original.
    pub shrank: bool,
}

/// Minimize `origin` (which the caller knows violates) under `violates`,
/// spending at most `max_evals` predicate calls. The predicate must be
/// deterministic — with this repo's seeded runs it is by construction.
pub fn shrink(
    origin: &Scenario,
    violates: &mut dyn FnMut(&Scenario) -> bool,
    max_evals: usize,
) -> ShrinkResult {
    let mut best = origin.clone();
    let mut evals = 0usize;
    // Try one candidate; adopt it if it still violates.
    let mut attempt = |best: &mut Scenario, evals: &mut usize, candidate: Scenario| -> bool {
        if *evals >= max_evals || candidate == *best {
            return false;
        }
        *evals += 1;
        if violates(&candidate) {
            *best = candidate;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: fewer tasks. Halves first (ddmin's coarse step), then
        // individual drops, repeated until no single task can go.
        while best.task_indices.len() > 1 {
            let mid = best.task_indices.len() / 2;
            let front = Scenario {
                task_indices: best.task_indices[..mid].to_vec(),
                ..best.clone()
            };
            let back = Scenario {
                task_indices: best.task_indices[mid..].to_vec(),
                ..best.clone()
            };
            if attempt(&mut best, &mut evals, front) || attempt(&mut best, &mut evals, back) {
                improved = true;
                continue;
            }
            let mut dropped_one = false;
            for i in 0..best.task_indices.len() {
                let mut indices = best.task_indices.clone();
                indices.remove(i);
                let candidate = Scenario {
                    task_indices: indices,
                    ..best.clone()
                };
                if attempt(&mut best, &mut evals, candidate) {
                    improved = true;
                    dropped_one = true;
                    break;
                }
            }
            if !dropped_one {
                break;
            }
        }

        // Pass 2: lower chaos. Off entirely if the violation survives,
        // otherwise halve the rate as far as it keeps reproducing.
        if best.chaos_enabled() {
            let off = best.at_chaos_rate(0.0);
            if attempt(&mut best, &mut evals, off) {
                improved = true;
            } else {
                while best.chaos_rate > 0.01 {
                    let halved = best.at_chaos_rate(best.chaos_rate / 2.0);
                    if attempt(&mut best, &mut evals, halved) {
                        improved = true;
                    } else {
                        break;
                    }
                }
            }
        }

        // Pass 3: drop budgets.
        if best.token_budget.is_some() {
            let candidate = Scenario {
                token_budget: None,
                ..best.clone()
            };
            improved |= attempt(&mut best, &mut evals, candidate);
        }
        if best.deadline_steps.is_some() {
            let candidate = Scenario {
                deadline_steps: None,
                ..best.clone()
            };
            improved |= attempt(&mut best, &mut evals, candidate);
        }

        // Pass 4: a single attempt.
        if best.max_attempts > 1 {
            let candidate = Scenario {
                max_attempts: 1,
                ..best.clone()
            };
            improved |= attempt(&mut best, &mut evals, candidate);
        }

        // Pass 5: a single worker.
        if best.workers > 1 {
            let candidate = Scenario {
                workers: 1,
                ..best.clone()
            };
            improved |= attempt(&mut best, &mut evals, candidate);
        }

        if !improved || evals >= max_evals {
            break;
        }
    }

    ShrinkResult {
        shrank: best != *origin,
        minimal: best,
        evals,
    }
}

/// Render a ready-to-paste regression test that replays `scenario` and
/// asserts the registry passes. `oracle` names the check that fired (it
/// becomes part of the test name); `master_seed` adds the replay
/// coordinate when the scenario came out of a generation sweep.
pub fn repro_snippet(scenario: &Scenario, oracle: &str, master_seed: Option<u64>) -> String {
    let test_name = format!(
        "crucible_regression_{}_{:08x}",
        oracle.replace('-', "_"),
        scenario.seed as u32
    );
    let replay = match master_seed {
        Some(master) => format!("    {}\n", scenario.seed_line(master)),
        None => String::new(),
    };
    format!(
        r#"#[test]
fn {test_name}() {{
{replay}    let scenario = eclair_crucible::Scenario {{
        id: {id},
        seed: 0x{seed:016x},
        task_indices: vec!{tasks:?},
        profile: eclair_fm::FmProfile::{profile:?},
        chaos_rate: {chaos_rate:?},
        chaos_seed: 0x{chaos_seed:016x},
        token_budget: {token_budget:?},
        deadline_steps: {deadline_steps:?},
        max_attempts: {max_attempts},
        workers: {workers},
        use_cache: {use_cache},
        use_shared: {use_shared},
    }};
    let run = eclair_crucible::run_scenario(&scenario).expect("scenario executes");
    let eval = eclair_crucible::evaluate(&run);
    assert!(eval.passed(), "violations: {{:?}}", eval.violations);
}}
"#,
        id = scenario.id,
        seed = scenario.seed,
        tasks = scenario.task_indices,
        profile = scenario.profile,
        chaos_rate = scenario.chaos_rate,
        chaos_seed = scenario.chaos_seed,
        token_budget = scenario.token_budget,
        deadline_steps = scenario.deadline_steps,
        max_attempts = scenario.max_attempts,
        workers = scenario.workers,
        use_cache = scenario.use_cache,
        use_shared = scenario.use_shared,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;

    /// A deliberately broken oracle — "chaos never injects anything" — so
    /// the shrinker has a real, deterministic violation to minimize.
    fn violates_no_faults_ever(s: &Scenario) -> bool {
        run_scenario(s)
            .map(|run| run.report.outcome.faults_injected_total() > 0)
            .unwrap_or(false)
    }

    fn violating_origin() -> Scenario {
        // Multi-task, chaotic, budgeted, retrying, multi-worker: plenty
        // of irrelevant structure for the shrinker to strip.
        let mut s = Scenario::generate(0xC0FFEE, 1);
        s.task_indices = vec![0, 3, 7, 11, 19, 23];
        s.profile = eclair_fm::FmProfile::Gpt4V;
        s.chaos_rate = 0.4;
        s.chaos_seed = 99;
        s.token_budget = Some(8_000);
        s.deadline_steps = None;
        s.max_attempts = 3;
        s.workers = 4;
        assert!(violates_no_faults_ever(&s), "origin must violate");
        s
    }

    #[test]
    fn shrinker_reduces_a_broken_oracle_violation_to_one_lean_task() {
        let origin = violating_origin();
        let result = shrink(&origin, &mut violates_no_faults_ever, 200);
        let m = &result.minimal;
        assert!(result.shrank);
        assert!(violates_no_faults_ever(m), "minimality must be witnessed");
        assert_eq!(m.task_indices.len(), 1, "one task must suffice: {m:?}");
        assert!(
            m.chaos_rate <= origin.chaos_rate,
            "shrinking never raises the chaos rate"
        );
        assert!(m.chaos_enabled(), "this violation genuinely needs chaos");
        assert_eq!(m.token_budget, None, "the budget was irrelevant");
        assert_eq!(m.max_attempts, 1, "retries were irrelevant");
        assert_eq!(m.workers, 1, "parallelism was irrelevant");
        assert!(result.evals <= 200);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let origin = violating_origin();
        let a = shrink(&origin, &mut violates_no_faults_ever, 200);
        let b = shrink(&origin, &mut violates_no_faults_ever, 200);
        assert_eq!(a.minimal, b.minimal);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn eval_budget_is_respected() {
        let origin = violating_origin();
        let result = shrink(&origin, &mut violates_no_faults_ever, 3);
        assert!(result.evals <= 3);
        assert!(violates_no_faults_ever(&result.minimal));
    }

    #[test]
    fn repro_snippet_is_a_complete_test() {
        let origin = violating_origin();
        let minimal = shrink(&origin, &mut violates_no_faults_ever, 200).minimal;
        let snippet = repro_snippet(&minimal, "faults-iff-chaos", Some(0xC0FFEE));
        assert!(snippet.starts_with("#[test]"));
        assert!(snippet.contains("fn crucible_regression_faults_iff_chaos_"));
        assert!(snippet.contains("// replay: Scenario::generate(0x0000000000c0ffee, 1)"));
        assert!(snippet.contains("eclair_crucible::run_scenario"));
        assert!(snippet.contains(&format!("seed: 0x{:016x}", minimal.seed)));
        assert!(snippet.contains("workers: 1"));
    }
}

//! Executing one scenario through the real fleet scheduler.
//!
//! A scenario run collects everything the oracle registry inspects: the
//! sequential fleet report (ground truth), the concurrent report when the
//! scenario asks for more than one worker (for the
//! parallel-matches-sequential oracle), and — when chaos is armed — the
//! metamorphic ladder: the same scenario re-run at rates
//! `[0, rate/2, rate]`. The ladder feeds the chaos-isolation oracle,
//! which compares *fault-free runs* across rungs. (A naive "completion
//! is monotone in the fault rate" relation is unsound here: a fault can
//! legitimately *rescue* a run — e.g. a session-expiry injection forces a
//! re-login that fixes a task the fault-free trajectory fails — so runs
//! that did take faults are unconstrained across rungs.)
//!
//! Every run also gathers a sequential re-execution with the frame cache
//! and perception memo toggled the other way, feeding the
//! cache-transparent oracle: caching is an optimization, never an
//! observable, so the flipped evidence must be byte-identical. The
//! fleet-wide shared percept cache gets the same treatment — an
//! opposite-shared twin feeding the shared-cache-transparent oracle.
//!
//! Finally, every run gathers the scenario's *hybrid twin*: the same
//! specs with the compiled-bot + FM-fallback policy attached. The
//! hybrid-transparent oracle demands the twin complete every task the
//! pure fleet completes — the compiled bot is a cost optimization, not a
//! capability change — excusing only budget trips (fallback plus rescue
//! tokens can exhaust a cumulative budget the pure run squeaked under).

use eclair_fleet::{Fleet, FleetConfig, FleetReport, MergeError};

use crate::scenario::Scenario;

/// One rung of the chaos ladder: the rate and the full report it
/// produced (oracles compare per-run records across rungs).
#[derive(Debug)]
pub struct LadderPoint {
    /// Fault rate this rung ran at.
    pub rate: f64,
    /// The rung's sequential fleet report.
    pub report: FleetReport,
}

/// Everything one scenario execution produced, ready for oracle checks.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Sequential execution — the deterministic ground truth.
    pub report: FleetReport,
    /// Concurrent execution on `scenario.workers` threads, present when
    /// the scenario uses more than one worker.
    pub parallel: Option<FleetReport>,
    /// The same scenario at rates `[0, rate/2, rate]`, present when
    /// chaos is armed.
    pub ladder: Option<Vec<LadderPoint>>,
    /// Sequential execution with the frame cache + perception memo
    /// toggled the other way. Always gathered: the cache-transparent
    /// oracle demands it be byte-identical to `report`.
    pub cache_flip: FleetReport,
    /// Sequential execution with the fleet-wide shared percept cache
    /// toggled the other way. Always gathered: the
    /// shared-cache-transparent oracle demands it be byte-identical to
    /// `report`.
    pub shared_flip: FleetReport,
    /// Sequential execution of the scenario's hybrid twin — the same
    /// specs with the compiled-bot + FM-fallback policy attached. Always
    /// gathered: the hybrid-transparent oracle demands every pure-FM
    /// success also succeed here (a budget tripped earlier by fallback
    /// tokens is the one excused divergence).
    pub hybrid: FleetReport,
}

fn fleet_for(scenario: &Scenario, workers: usize) -> Fleet {
    Fleet::new(
        FleetConfig::default()
            .with_workers(workers)
            .with_queue_capacity(2 * workers)
            .with_retry(scenario.retry_policy())
            .with_seed(scenario.seed),
    )
}

/// Execute `scenario` and gather the evidence the oracles need.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, MergeError> {
    let report = fleet_for(scenario, 1).run_sequential(scenario.specs())?;
    let parallel = if scenario.workers > 1 {
        Some(fleet_for(scenario, scenario.workers).run(scenario.specs())?)
    } else {
        None
    };
    let ladder = if scenario.chaos_enabled() {
        let mut points = Vec::with_capacity(3);
        for rate in [0.0, scenario.chaos_rate / 2.0, scenario.chaos_rate] {
            let rung = scenario.at_chaos_rate(rate);
            points.push(LadderPoint {
                rate,
                report: fleet_for(&rung, 1).run_sequential(rung.specs())?,
            });
        }
        Some(points)
    } else {
        None
    };
    let flipped = scenario.with_cache(!scenario.use_cache);
    let cache_flip = fleet_for(&flipped, 1).run_sequential(flipped.specs())?;
    let sflipped = scenario.with_shared(!scenario.use_shared);
    let shared_flip = fleet_for(&sflipped, 1).run_sequential(sflipped.specs())?;
    let hybrid = fleet_for(scenario, 1).run_sequential(scenario.hybrid_specs())?;
    Ok(ScenarioRun {
        scenario: scenario.clone(),
        report,
        parallel,
        ladder,
        cache_flip,
        shared_flip,
        hybrid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_free_single_worker_scenario_runs_lean() {
        let mut s = Scenario::generate(31, 0);
        s.workers = 1;
        s.chaos_rate = 0.0;
        let run = run_scenario(&s).expect("runs");
        assert!(run.parallel.is_none());
        assert!(run.ladder.is_none());
        assert_eq!(
            run.report.outcome.records.len(),
            s.task_indices.len(),
            "one record per drawn task"
        );
        assert_eq!(
            run.cache_flip.outcome.to_json(),
            run.report.outcome.to_json(),
            "the opposite-cache re-run is always gathered and transparent"
        );
        assert_eq!(
            run.shared_flip.outcome.to_json(),
            run.report.outcome.to_json(),
            "the opposite-shared re-run is always gathered and transparent"
        );
    }

    #[test]
    fn chaos_multi_worker_scenario_gathers_all_evidence() {
        let mut s = Scenario::generate(31, 1);
        s.workers = 4;
        s.chaos_rate = 0.4;
        s.chaos_seed = 9;
        let run = run_scenario(&s).expect("runs");
        assert!(run.parallel.is_some());
        let ladder = run.ladder.expect("chaos arms the ladder");
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].rate, 0.0);
        assert_eq!(ladder[1].rate, 0.2);
        assert_eq!(ladder[2].rate, 0.4);
        assert_eq!(
            ladder[0].report.outcome.faults_injected_total(),
            0,
            "the bottom rung is fault-free by construction"
        );
    }

    #[test]
    fn scenario_runs_are_reproducible() {
        let s = Scenario::generate(8, 2);
        let a = run_scenario(&s).expect("first");
        let b = run_scenario(&s).expect("second");
        assert_eq!(a.report.outcome.to_json(), b.report.outcome.to_json());
        assert_eq!(
            a.report.merged_trace_jsonl().unwrap(),
            b.report.merged_trace_jsonl().unwrap()
        );
    }
}

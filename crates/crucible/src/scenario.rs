//! The scenario grammar: everything one simulation trial randomizes.
//!
//! A [`Scenario`] is a fully explicit value — tasks, model profile, chaos
//! rate, budgets, retry, worker count — with two ways to get one:
//! generated from `(master_seed, id)` via [`Scenario::generate`]
//! (scenario fuzzing), or written out literally (what the shrinker's
//! repro snippet pastes into a regression test). Either way the scenario
//! *is* the reproduction: running it twice produces byte-identical fleet
//! outcomes, so a one-line seed is a complete bug report.

use eclair_chaos::ChaosProfile;
use eclair_corpus::corpus_tasks;
use eclair_fleet::{derive_seed, RetryPolicy, RunSpec};
use eclair_fm::FmProfile;
use serde::{Deserialize, Serialize};

use crate::rng::SplitMix64;

/// Chaos rates the generator draws from. Quantized so repro lines and
/// golden files stay readable, and so the metamorphic ladder (rate/2)
/// stays on exact binary fractions.
pub const CHAOS_RATES: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// Model profiles a scenario may draw (the three the paper benchmarks;
/// the text-only ablation is excluded — it can't see the GUI at all, so
/// its failures tell the oracles nothing).
pub const PROFILES: [FmProfile; 3] = [FmProfile::Oracle, FmProfile::CogAgent18b, FmProfile::Gpt4V];

/// One randomized trial for the fleet scheduler: which tasks run, under
/// which model, with how much chaos, inside which budgets, on how many
/// workers. Every field is data — no closures, no handles — so scenarios
/// serialize, diff, and shrink structurally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Position in the generation sweep (0 for hand-written scenarios).
    pub id: u64,
    /// Fleet seed for this trial; generated scenarios use
    /// `derive_seed(master_seed, id)`.
    pub seed: u64,
    /// Indices into the full generated corpus
    /// ([`eclair_corpus::corpus_tasks`]), distinct, in draw order. The
    /// corpus keeps the 30 handwritten tasks as a stable prefix, so
    /// literal scenarios written against the old `all_tasks` pool still
    /// name the same tasks.
    pub task_indices: Vec<usize>,
    /// Model preset every run uses.
    pub profile: FmProfile,
    /// Fault rate; 0.0 disables chaos entirely.
    pub chaos_rate: f64,
    /// Chaos schedule seed (ignored when `chaos_rate` is 0).
    pub chaos_seed: u64,
    /// Cumulative token budget per run, if any.
    pub token_budget: Option<u64>,
    /// Per-attempt step deadline, if any.
    pub deadline_steps: Option<usize>,
    /// Attempts per run (1 = no retries).
    pub max_attempts: u32,
    /// Worker threads; > 1 arms the parallel-vs-sequential oracle.
    pub workers: usize,
    /// Whether runs use the frame cache + perception memo. Caching is
    /// contractually invisible — the runner always gathers an
    /// opposite-cache re-run and the cache-transparent oracle demands
    /// byte-identical evidence — so this knob only decides which side
    /// is the baseline.
    pub use_cache: bool,
    /// Whether runs see the fleet-wide shared percept cache. As
    /// transparent as the local caches — the runner gathers an
    /// opposite-shared twin and the shared-cache-transparent oracle
    /// demands byte-identical evidence. Derived from the scenario seed's
    /// parity (no generator draw), so adding this knob shifted no
    /// existing scenario.
    pub use_shared: bool,
}

impl Scenario {
    /// Generate scenario `id` of the sweep under `master_seed`. Pure: the
    /// same pair always yields the same scenario, and distinct ids draw
    /// from independent SplitMix64 streams.
    pub fn generate(master_seed: u64, id: u64) -> Self {
        let seed = derive_seed(master_seed, id);
        let mut rng = SplitMix64::new(seed);
        let pool = corpus_tasks().len();
        let count = 1 + rng.next_below(6) as usize;
        let mut task_indices = Vec::with_capacity(count);
        while task_indices.len() < count {
            let i = rng.next_below(pool as u64) as usize;
            if !task_indices.contains(&i) {
                task_indices.push(i);
            }
        }
        let profile = PROFILES[rng.next_below(PROFILES.len() as u64) as usize];
        let (chaos_rate, chaos_seed) = if rng.chance(1, 2) {
            (
                CHAOS_RATES[rng.next_below(CHAOS_RATES.len() as u64) as usize],
                rng.next_u64(),
            )
        } else {
            (0.0, 0)
        };
        let token_budget = if rng.chance(1, 4) {
            Some(1_000 + rng.next_below(9_000))
        } else {
            None
        };
        let deadline_steps = if rng.chance(1, 4) {
            Some(2 + rng.next_below(18) as usize)
        } else {
            None
        };
        Self {
            id,
            seed,
            task_indices,
            profile,
            chaos_rate,
            chaos_seed,
            token_budget,
            deadline_steps,
            max_attempts: 1 + rng.next_below(3) as u32,
            workers: 1 + rng.next_below(4) as usize,
            // Mostly on (the production default); off often enough that
            // sweeps exercise the uncached baseline as the ground truth.
            use_cache: !rng.chance(1, 8),
            // Seed parity, not a draw: an extra draw here would shift
            // every knob of every existing generated scenario.
            use_shared: seed & 1 == 0,
        }
    }

    /// Whether chaos is armed.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos_rate > 0.0
    }

    /// The retry policy the fleet runs under (default backoff shape, the
    /// scenario only varies the attempt count).
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Expand into run specs, one per task index, run ids in draw order.
    pub fn specs(&self) -> Vec<RunSpec> {
        let pool = corpus_tasks();
        self.task_indices
            .iter()
            .enumerate()
            .map(|(i, &ti)| {
                let mut spec = RunSpec::for_task(
                    self.seed,
                    i as u64,
                    pool[ti % pool.len()].clone(),
                    self.profile,
                );
                if let Some(b) = self.token_budget {
                    spec = spec.with_token_budget(b);
                }
                if let Some(d) = self.deadline_steps {
                    spec = spec.with_deadline_steps(d);
                }
                if self.chaos_enabled() {
                    spec = spec.with_chaos(ChaosProfile::full(self.chaos_seed, self.chaos_rate));
                }
                spec.with_cache(self.use_cache).with_shared(self.use_shared)
            })
            .collect()
    }

    /// A copy with a different chaos rate (the metamorphic ladder and the
    /// shrinker both use this).
    pub fn at_chaos_rate(&self, rate: f64) -> Self {
        Self {
            chaos_rate: rate,
            ..self.clone()
        }
    }

    /// A copy pinned to a different model profile.
    pub fn with_profile(&self, profile: FmProfile) -> Self {
        Self {
            profile,
            ..self.clone()
        }
    }

    /// A copy with the caches toggled (the runner's transparency re-run).
    pub fn with_cache(&self, on: bool) -> Self {
        Self {
            use_cache: on,
            ..self.clone()
        }
    }

    /// A copy with the shared percept cache toggled (the runner's
    /// shared-transparency re-run).
    pub fn with_shared(&self, on: bool) -> Self {
        Self {
            use_shared: on,
            ..self.clone()
        }
    }

    /// The scenario's hybrid twin specs: identical in every knob, plus
    /// the compiled-bot + FM-fallback policy. The runner always gathers a
    /// twin execution; the hybrid-transparent oracle demands the twin
    /// dominate the pure report (same successes or better, budget trips
    /// excused).
    pub fn hybrid_specs(&self) -> Vec<RunSpec> {
        self.specs()
            .into_iter()
            .map(|s| s.with_hybrid(eclair_hybrid::HybridPolicy::default()))
            .collect()
    }

    /// The one-line replay coordinate for generated scenarios.
    pub fn seed_line(&self, master_seed: u64) -> String {
        format!(
            "// replay: Scenario::generate(0x{master_seed:016x}, {}) (seed 0x{:016x})",
            self.id, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure_and_id_sensitive() {
        let a = Scenario::generate(99, 3);
        let b = Scenario::generate(99, 3);
        assert_eq!(a, b);
        assert_ne!(a, Scenario::generate(99, 4));
        assert_ne!(a, Scenario::generate(100, 3));
    }

    #[test]
    fn generated_scenarios_stay_in_the_grammar() {
        let pool = corpus_tasks().len();
        for id in 0..200 {
            let s = Scenario::generate(7, id);
            assert!((1..=6).contains(&s.task_indices.len()), "id {id}");
            let mut dedup = s.task_indices.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), s.task_indices.len(), "id {id}: distinct");
            assert!(s.task_indices.iter().all(|&i| i < pool));
            assert!(PROFILES.contains(&s.profile));
            assert!(s.chaos_rate == 0.0 || CHAOS_RATES.contains(&s.chaos_rate));
            assert!((1..=3).contains(&s.max_attempts));
            assert!((1..=4).contains(&s.workers));
            if let Some(b) = s.token_budget {
                assert!((1_000..10_000).contains(&b));
            }
            if let Some(d) = s.deadline_steps {
                assert!((2..20).contains(&d));
            }
        }
    }

    #[test]
    fn sweep_covers_the_grammar_dimensions() {
        // 64 scenarios must exercise chaos, budgets, deadlines, retries,
        // and multi-worker configs — otherwise the sweep tests less than
        // it claims.
        let sweep: Vec<Scenario> = (0..64).map(|id| Scenario::generate(2026, id)).collect();
        assert!(sweep.iter().any(|s| s.chaos_enabled()));
        assert!(sweep.iter().any(|s| !s.chaos_enabled()));
        assert!(sweep.iter().any(|s| s.token_budget.is_some()));
        assert!(sweep.iter().any(|s| s.deadline_steps.is_some()));
        assert!(sweep.iter().any(|s| s.max_attempts > 1));
        assert!(sweep.iter().any(|s| s.workers > 1));
        assert!(sweep.iter().any(|s| s.workers == 1));
        assert!(sweep.iter().any(|s| s.use_cache));
        assert!(sweep.iter().any(|s| !s.use_cache));
        assert!(sweep.iter().any(|s| s.use_shared));
        assert!(sweep.iter().any(|s| !s.use_shared));
        // The sweep draws from the full generated corpus, not just the
        // 30-task handwritten prefix.
        assert!(
            sweep
                .iter()
                .any(|s| s.task_indices.iter().any(|&i| i >= 30)),
            "sweep never left the handwritten prefix — corpus not wired in"
        );
    }

    #[test]
    fn specs_reflect_the_scenario_knobs() {
        let s = Scenario {
            id: 0,
            seed: 11,
            task_indices: vec![2, 5],
            profile: FmProfile::Gpt4V,
            chaos_rate: 0.3,
            chaos_seed: 77,
            token_budget: Some(5_000),
            deadline_steps: Some(9),
            max_attempts: 2,
            workers: 3,
            use_cache: false,
            use_shared: false,
        };
        let specs = s.specs();
        assert_eq!(specs.len(), 2);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.run_id, i as u64);
            assert_eq!(spec.seed, derive_seed(11, i as u64));
            assert_eq!(spec.token_budget, Some(5_000));
            assert_eq!(spec.deadline_steps, Some(9));
            assert_eq!(spec.chaos, Some(ChaosProfile::full(77, 0.3)));
            assert!(!spec.config.use_cache, "the cache knob reaches the spec");
            assert!(!spec.use_shared, "the shared knob reaches the spec");
        }
        assert_eq!(specs[0].task.id, corpus_tasks()[2].id);
        assert_eq!(specs[1].task.id, corpus_tasks()[5].id);
        assert_eq!(s.retry_policy().max_attempts, 2);
    }

    #[test]
    fn scenarios_serialize_round_trip() {
        let s = Scenario::generate(5, 12);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

//! The crucible's own generator: a plain SplitMix64 stream.
//!
//! Scenario generation must be reproducible from a single `u64` forever —
//! it seeds the committed bench artifact and every repro line the
//! shrinker prints — so it cannot ride on `StdRng` (whose stream is an
//! implementation detail of the vendored rand subset). SplitMix64 is
//! fully specified in one screen of code and is already the repo's seed
//! derivation function (see `eclair_fleet::derive_seed`), making this the
//! same primitive in streaming form.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. Plain modulo — the bias at these
    /// tiny bounds is irrelevant for scenario generation and keeping the
    /// mapping trivial keeps repro lines portable.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Bernoulli draw: true with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible_and_moves() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        let mut dedup = first.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "draws must not repeat locally");
    }

    #[test]
    fn first_draw_matches_derive_seed_of_the_increment() {
        // Streaming SplitMix64 and eclair-fleet's one-shot derive_seed are
        // the same finalizer: draw 1 of stream `s` equals mixing
        // `s + GAMMA` through the finalizer.
        let mut rng = SplitMix64::new(7);
        let gamma = 0x9E37_79B9_7F4A_7C15u64;
        assert_eq!(
            rng.next_u64(),
            eclair_fleet::derive_seed(7u64.wrapping_add(gamma), 0)
        );
    }

    #[test]
    fn bounded_draws_respect_the_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(rng.next_below(6) < 6);
        }
    }
}

//! The oracle registry: metamorphic and invariant checks over a
//! [`ScenarioRun`].
//!
//! Each oracle is a named pure function from evidence to a verdict.
//! Oracles never re-run anything — the runner gathered all evidence up
//! front — so a check is cheap enough to evaluate on every scenario of a
//! sweep, and a violation pinpoints which contract broke, not merely
//! that something did.
//!
//! Two flavors live here side by side:
//!
//! * **invariants** — properties of a single execution (span trees
//!   well-formed, token accounting closed, budgets enforced);
//! * **metamorphic relations** — properties across related executions
//!   (N workers vs sequential, completion vs chaos rate), which catch
//!   bugs no single-run assertion can see.

use eclair_trace::{audit_seq_gapless, audit_spans, fault_injections, fm_token_totals, RunSummary};

use crate::runner::ScenarioRun;

/// One oracle's verdict on one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The contract held.
    Pass,
    /// The oracle does not apply to this scenario (e.g. the parallel
    /// oracle on a single-worker scenario). Skips are not counted as
    /// evaluated checks.
    Skip,
    /// The contract broke; the string says how.
    Fail(String),
}

/// A named check over scenario evidence.
pub struct Oracle {
    /// Stable name, used in violation reports and shrinker predicates.
    pub name: &'static str,
    /// One-line statement of the contract.
    pub contract: &'static str,
    /// The check itself.
    pub check: fn(&ScenarioRun) -> Verdict,
}

/// A failed check, attributed to its oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// What it saw.
    pub detail: String,
}

/// What evaluating the registry over one run produced.
#[derive(Debug, Clone, Default)]
pub struct Evaluation {
    /// Oracles that actually evaluated (passes + failures, not skips).
    pub checks: usize,
    /// Every contract that broke.
    pub violations: Vec<Violation>,
}

impl Evaluation {
    /// No contract broke.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn fail(cond: bool, detail: impl FnOnce() -> String) -> Verdict {
    if cond {
        Verdict::Fail(detail())
    } else {
        Verdict::Pass
    }
}

fn records_complete(run: &ScenarioRun) -> Verdict {
    let o = &run.report.outcome;
    let n = run.scenario.task_indices.len();
    if o.records.len() != n {
        return Verdict::Fail(format!("{} records for {} tasks", o.records.len(), n));
    }
    for (i, r) in o.records.iter().enumerate() {
        if r.run_id != i as u64 {
            return Verdict::Fail(format!("record {i} carries run_id {}", r.run_id));
        }
        if r.seed != eclair_fleet::derive_seed(run.scenario.seed, r.run_id) {
            return Verdict::Fail(format!("run {i}: seed not derived from the fleet seed"));
        }
        if r.profile != run.scenario.profile {
            return Verdict::Fail(format!("run {i}: profile {:?}", r.profile));
        }
    }
    fail(o.cancelled != 0, || {
        format!("{} cancelled records in an uncancelled fleet", o.cancelled)
    })
}

fn aggregates_consistent(run: &ScenarioRun) -> Verdict {
    let o = &run.report.outcome;
    let recomputed = eclair_fleet::FleetOutcome::from_records(o.fleet_seed, o.records.clone());
    fail(recomputed != *o, || {
        "fleet aggregates do not equal a recomputation from the records".to_string()
    })
}

fn recoveries_bounded(run: &ScenarioRun) -> Verdict {
    for r in &run.report.outcome.records {
        if r.result.recoveries > r.result.failures {
            return Verdict::Fail(format!(
                "run {}: {} recoveries from {} failures",
                r.run_id, r.result.recoveries, r.result.failures
            ));
        }
    }
    Verdict::Pass
}

fn tokens_account(run: &ScenarioRun) -> Verdict {
    let t = &run.report.outcome.tokens;
    let traced = fm_token_totals(&run.report.merged_trace);
    fail(
        (traced.prompt, traced.completion, traced.calls)
            != (t.prompt_tokens, t.completion_tokens, t.calls),
        || {
            format!(
                "trace accounts {traced:?}, meters say ({}, {}, {})",
                t.prompt_tokens, t.completion_tokens, t.calls
            )
        },
    )
}

fn span_tree_wellformed(run: &ScenarioRun) -> Verdict {
    match audit_spans(&run.report.merged_trace) {
        Ok(audit) => fail(audit.unclosed != 0, || {
            format!("{} spans never closed", audit.unclosed)
        }),
        Err(e) => Verdict::Fail(e.to_string()),
    }
}

fn seq_gapless(run: &ScenarioRun) -> Verdict {
    match audit_seq_gapless(&run.report.merged_trace) {
        Ok(()) => Verdict::Pass,
        Err(e) => Verdict::Fail(e.to_string()),
    }
}

fn merged_rollup_additive(run: &ScenarioRun) -> Verdict {
    let from_trace = RunSummary::from_events(&run.report.merged_trace);
    fail(from_trace != run.report.outcome.totals, || {
        "rollup of the merged trace differs from the summed per-run summaries".to_string()
    })
}

fn parallel_matches_sequential(run: &ScenarioRun) -> Verdict {
    let Some(par) = &run.parallel else {
        return Verdict::Skip;
    };
    if par.outcome.to_json() != run.report.outcome.to_json() {
        return Verdict::Fail(format!(
            "{}-worker outcome diverged from sequential",
            run.scenario.workers
        ));
    }
    fail(par.merged_trace != run.report.merged_trace, || {
        format!(
            "{}-worker merged trace diverged from sequential",
            run.scenario.workers
        )
    })
}

fn chaos_isolation(run: &ScenarioRun) -> Verdict {
    // The metamorphic relation chaos actually guarantees. Completion is
    // NOT monotone in the fault rate — an injected session expiry can
    // force a re-login that rescues a run its fault-free trajectory
    // fails (the sweep found exactly this) — but a run in which *zero*
    // faults landed must be untouched: byte-identical to its execution
    // at rate 0. Anything else means the chaos layer perturbs runs it
    // claims not to have entered.
    let Some(ladder) = &run.ladder else {
        return Verdict::Skip;
    };
    let base = &ladder[0].report.outcome;
    for rung in &ladder[1..] {
        for r in &rung.report.outcome.records {
            if r.faults_injected > 0 {
                continue;
            }
            match base.record(r.run_id) {
                Some(b) if b == r => {}
                Some(_) => {
                    return Verdict::Fail(format!(
                        "run {} took no faults at rate {} yet diverged from its rate-0 record",
                        r.run_id, rung.rate
                    ))
                }
                None => {
                    return Verdict::Fail(format!(
                        "run {} exists at rate {} but not at rate 0",
                        r.run_id, rung.rate
                    ))
                }
            }
        }
    }
    Verdict::Pass
}

fn faults_iff_chaos(run: &ScenarioRun) -> Verdict {
    let counted = run.report.outcome.faults_injected_total();
    let traced = fault_injections(&run.report.merged_trace).count() as u64;
    if traced != counted {
        return Verdict::Fail(format!(
            "{traced} FaultInjected events for {counted} counted injections"
        ));
    }
    fail(!run.scenario.chaos_enabled() && counted != 0, || {
        format!("{counted} faults injected with chaos disabled")
    })
}

fn cache_transparent(run: &ScenarioRun) -> Verdict {
    // The frame cache and perception memo are optimizations, never
    // observables: a cache hit re-accounts the identical tokens and the
    // skipped relayout reproduces the page a full rebuild would have
    // built. The runner re-executed the scenario with the caches toggled
    // the other way; any drift in outcome or trace means a cache served
    // stale state or leaked its existence into the record.
    let flip = &run.cache_flip;
    if flip.outcome.to_json() != run.report.outcome.to_json() {
        return Verdict::Fail(format!(
            "outcome diverged when the cache toggled {}",
            if run.scenario.use_cache { "off" } else { "on" }
        ));
    }
    fail(flip.merged_trace != run.report.merged_trace, || {
        "merged trace diverged when the cache toggled".to_string()
    })
}

fn shared_cache_transparent(run: &ScenarioRun) -> Verdict {
    // The fleet-wide shared percept cache (and its single-flight dedup)
    // is the same contract one level up: a shared hit re-accounts the
    // identical tokens the local memo would have, so toggling the whole
    // layer off must change nothing observable. The runner re-executed
    // the scenario with the shared knob flipped; any drift means a shard
    // cross-served a percept between streams or leaked a counter into
    // the record. Never skips: the opposite-shared twin is always
    // gathered.
    let flip = &run.shared_flip;
    if flip.outcome.to_json() != run.report.outcome.to_json() {
        return Verdict::Fail(format!(
            "outcome diverged when the shared cache toggled {}",
            if run.scenario.use_shared { "off" } else { "on" }
        ));
    }
    fail(flip.merged_trace != run.report.merged_trace, || {
        "merged trace diverged when the shared cache toggled".to_string()
    })
}

fn budgets_respected(run: &ScenarioRun) -> Verdict {
    use eclair_fleet::RunOutcome;
    let s = &run.scenario;
    for r in &run.report.outcome.records {
        if r.attempts > s.max_attempts || r.retries != r.attempts.saturating_sub(1) {
            return Verdict::Fail(format!(
                "run {}: {} attempts / {} retries under max_attempts {}",
                r.run_id, r.attempts, r.retries, s.max_attempts
            ));
        }
        if let Some(b) = s.token_budget {
            let total = r.tokens.total_tokens();
            let ok = match r.outcome {
                // Success is checked before the budget, so a winning final
                // attempt may legitimately overshoot; what must never
                // happen is a non-budget failure *above* the budget (a
                // retry the budget should have stopped) or a budget
                // verdict below it.
                RunOutcome::BudgetExceeded => total > b,
                RunOutcome::Failed | RunOutcome::DeadlineExceeded => total <= b,
                _ => true,
            };
            if !ok {
                return Verdict::Fail(format!(
                    "run {}: outcome {:?} with {total} tokens against budget {b}",
                    r.run_id, r.outcome
                ));
            }
        }
        if let Some(d) = s.deadline_steps {
            if r.result.actions_attempted > d {
                return Verdict::Fail(format!(
                    "run {}: {} steps in the final attempt against deadline {d}",
                    r.run_id, r.result.actions_attempted
                ));
            }
        }
    }
    Verdict::Pass
}

fn vt_additive(run: &ScenarioRun) -> Verdict {
    // Virtual-time accounting must be additive over the span tree: the
    // exclusive times of all spans telescope back to exactly the summed
    // inclusive time of the root spans, with no negative-duration and no
    // unclosed spans. A violation means an event was stamped outside its
    // span's lifetime — i.e. the virtual clock ran backwards or a span
    // leaked. Never skips: every scenario produces a merged trace.
    let p = eclair_obs::profile_spans(&run.report.merged_trace);
    if !p.is_additive() {
        return Verdict::Fail(format!(
            "exclusive sum {} vs root total {} ({} negative, {} unclosed spans)",
            p.exclusive_sum_us, p.total_root_us, p.negative_spans, p.unclosed
        ));
    }
    for r in &run.report.outcome.records {
        if r.vt_total_us != r.vt_exec_us + r.vt_backoff_us {
            return Verdict::Fail(format!(
                "run {}: vt_total {} != exec {} + backoff {}",
                r.run_id, r.vt_total_us, r.vt_exec_us, r.vt_backoff_us
            ));
        }
    }
    Verdict::Pass
}

fn hybrid_transparent(run: &ScenarioRun) -> Verdict {
    // The compiled bot is a cost optimization, never a capability change:
    // with the full-FM rescue on (the default the runner uses), a hybrid
    // attempt that fails re-runs the exact pure-FM attempt at the same
    // seed, so the twin must complete every task the pure fleet does. The
    // one excused divergence is a budget trip — fallback plus rescue
    // tokens accumulate against the same cumulative budget, so the twin
    // may exhaust it on an earlier attempt than the pure run did. Never
    // skips: the runner always gathers the twin.
    use eclair_fleet::RunOutcome;
    for r in &run.report.outcome.records {
        let Some(twin) = run.hybrid.outcome.record(r.run_id) else {
            return Verdict::Fail(format!("run {} has no hybrid twin record", r.run_id));
        };
        if r.outcome == RunOutcome::Success
            && !matches!(
                twin.outcome,
                RunOutcome::Success | RunOutcome::BudgetExceeded
            )
        {
            return Verdict::Fail(format!(
                "run {} succeeds pure-FM but its hybrid twin reports {:?}",
                r.run_id, twin.outcome
            ));
        }
    }
    Verdict::Pass
}

/// The full registry, in evaluation order.
pub fn registry() -> Vec<Oracle> {
    vec![
        Oracle {
            name: "records-complete",
            contract: "one record per task, run-id ordered, seeds derived, nothing cancelled",
            check: records_complete,
        },
        Oracle {
            name: "aggregates-consistent",
            contract: "fleet aggregates equal a recomputation from the per-run records",
            check: aggregates_consistent,
        },
        Oracle {
            name: "recoveries-bounded",
            contract: "a run never recovers more times than it failed",
            check: recoveries_bounded,
        },
        Oracle {
            name: "tokens-account",
            contract: "FmCall events in the trace sum to exactly the token meters",
            check: tokens_account,
        },
        Oracle {
            name: "span-tree-wellformed",
            contract: "the merged trace is a forest: LIFO ends, unique open ids, parents resolve",
            check: span_tree_wellformed,
        },
        Oracle {
            name: "seq-gapless",
            contract: "merged trace sequence numbers run 0,1,2,… with no gaps",
            check: seq_gapless,
        },
        Oracle {
            name: "merged-rollup-additive",
            contract: "summarizing the merged trace equals the sum of per-run summaries",
            check: merged_rollup_additive,
        },
        Oracle {
            name: "parallel-matches-sequential",
            contract: "an N-worker fleet is byte-identical to the sequential baseline",
            check: parallel_matches_sequential,
        },
        Oracle {
            name: "chaos-isolation",
            contract: "a run that took zero faults is byte-identical to its rate-0 execution",
            check: chaos_isolation,
        },
        Oracle {
            name: "faults-iff-chaos",
            contract: "FaultInjected events match the counters and only occur under chaos",
            check: faults_iff_chaos,
        },
        Oracle {
            name: "cache-transparent",
            contract:
                "toggling the frame cache + perception memo leaves outcome and trace byte-identical",
            check: cache_transparent,
        },
        Oracle {
            name: "shared-cache-transparent",
            contract:
                "toggling the fleet-wide shared percept cache leaves outcome and trace byte-identical",
            check: shared_cache_transparent,
        },
        Oracle {
            name: "budgets-respected",
            contract: "attempt, token, and deadline budgets are enforced as specified",
            check: budgets_respected,
        },
        Oracle {
            name: "vt-additive",
            contract: "virtual-time accounting is additive: span exclusive times telescope to the root total",
            check: vt_additive,
        },
        Oracle {
            name: "hybrid-transparent",
            contract: "the compiled-bot twin completes every task the pure-FM fleet completes (budget trips excused)",
            check: hybrid_transparent,
        },
    ]
}

/// Evaluate every applicable oracle against one run.
pub fn evaluate(run: &ScenarioRun) -> Evaluation {
    let mut eval = Evaluation::default();
    for oracle in registry() {
        match (oracle.check)(run) {
            Verdict::Pass => eval.checks += 1,
            Verdict::Skip => {}
            Verdict::Fail(detail) => {
                eval.checks += 1;
                eval.violations.push(Violation {
                    oracle: oracle.name,
                    detail,
                });
            }
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;
    use crate::scenario::Scenario;

    #[test]
    fn registry_names_are_unique_and_documented() {
        let reg = registry();
        assert!(reg.len() >= 10, "the ISSUE promises ~10 oracles");
        let mut names: Vec<_> = reg.iter().map(|o| o.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), reg.len());
        assert!(reg.iter().all(|o| !o.contract.is_empty()));
    }

    #[test]
    fn a_healthy_scenario_passes_every_applicable_oracle() {
        // Chaos + budgets + retries + multi-worker: arms every oracle.
        let mut s = Scenario::generate(17, 5);
        s.workers = 3;
        s.chaos_rate = 0.3;
        s.chaos_seed = 41;
        s.max_attempts = 2;
        let run = run_scenario(&s).expect("runs");
        let eval = evaluate(&run);
        assert!(eval.passed(), "violations: {:?}", eval.violations);
        assert_eq!(eval.checks, registry().len(), "nothing should skip here");
    }

    #[test]
    fn inapplicable_oracles_skip_instead_of_passing_vacuously() {
        let mut s = Scenario::generate(17, 6);
        s.workers = 1;
        s.chaos_rate = 0.0;
        let run = run_scenario(&s).expect("runs");
        let eval = evaluate(&run);
        assert!(eval.passed(), "violations: {:?}", eval.violations);
        assert_eq!(
            eval.checks,
            registry().len() - 2,
            "parallel and ladder oracles must skip"
        );
    }

    #[test]
    fn a_regressed_hybrid_twin_breaks_transparency() {
        let mut s = Scenario::generate(17, 8);
        s.workers = 1;
        s.chaos_rate = 0.0;
        let mut run = run_scenario(&s).expect("runs");
        let victim = run
            .report
            .outcome
            .records
            .iter()
            .find(|r| r.outcome == eclair_fleet::RunOutcome::Success)
            .map(|r| r.run_id)
            .expect("a chaos-free scenario completes something");
        // Doctor the twin: pretend the compiled bot lost a task the pure
        // fleet wins, for a reason the budget excuse does not cover.
        let twin = run
            .hybrid
            .outcome
            .records
            .iter_mut()
            .find(|r| r.run_id == victim)
            .expect("twin exists");
        twin.outcome = eclair_fleet::RunOutcome::Failed;
        let eval = evaluate(&run);
        let fired: Vec<_> = eval.violations.iter().map(|v| v.oracle).collect();
        assert!(fired.contains(&"hybrid-transparent"), "{fired:?}");
    }

    #[test]
    fn a_leaky_shared_cache_breaks_transparency() {
        let mut s = Scenario::generate(17, 9);
        s.workers = 1;
        s.chaos_rate = 0.0;
        let mut run = run_scenario(&s).expect("runs");
        // Doctor the opposite-shared twin: pretend the shared layer
        // changed an outcome when it toggled.
        run.shared_flip.outcome.succeeded += 1;
        let eval = evaluate(&run);
        let fired: Vec<_> = eval.violations.iter().map(|v| v.oracle).collect();
        assert!(fired.contains(&"shared-cache-transparent"), "{fired:?}");
        assert!(
            !fired.contains(&"cache-transparent"),
            "the local-cache oracle must not fire for a shared-layer leak: {fired:?}"
        );
    }

    #[test]
    fn a_doctored_run_is_caught_by_the_right_oracles() {
        let mut s = Scenario::generate(17, 7);
        s.workers = 1;
        s.chaos_rate = 0.0;
        let mut run = run_scenario(&s).expect("runs");
        // Corrupt the evidence: drop the first trace event and overstate
        // the succeeded count.
        run.report.merged_trace.remove(0);
        run.report.outcome.succeeded += 1;
        let eval = evaluate(&run);
        let fired: Vec<_> = eval.violations.iter().map(|v| v.oracle).collect();
        assert!(fired.contains(&"aggregates-consistent"), "{fired:?}");
        assert!(
            fired.contains(&"seq-gapless") || fired.contains(&"span-tree-wellformed"),
            "{fired:?}"
        );
    }
}

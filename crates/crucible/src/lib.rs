//! # eclair-crucible
//!
//! A deterministic simulation-testing harness for the ECLAIR fleet: the
//! machinery that verifies the verifier. Where the unit suites pin
//! individual components, the crucible *fuzzes whole executions* — and
//! because every layer below it is seeded (model noise, chaos schedules,
//! retry jitter, trace sequence numbers), a failing trial is not a flake
//! but a one-line reproducible bug.
//!
//! Three pieces compose:
//!
//! 1. **Scenario fuzzing** ([`Scenario::generate`]) — from one master
//!    seed, derive randomized trials over the full configuration grammar:
//!    task subset × model profile × chaos rate × token/step budgets ×
//!    retry policy × worker count.
//! 2. **Oracle registry** ([`registry`] / [`evaluate`]) — 14 metamorphic
//!    and invariant checks over the fleet report and merged trace:
//!    recoveries bounded by failures, trace token accounting closed
//!    against the meters, span trees well-formed and gapless after merge,
//!    N-worker runs byte-identical to sequential, oracle-pinned
//!    completion monotone in the chaos rate, faults only under chaos,
//!    budgets enforced, the compiled-bot hybrid twin completing every
//!    task the pure-FM fleet completes.
//! 3. **Shrinking** ([`shrink`]) — on violation, delta-debug the scenario
//!    down (fewer tasks → lower chaos → no budgets → one attempt → one
//!    worker) and print a paste-ready `#[test]` ([`repro_snippet`]) plus
//!    the replay seed line.
//!
//! The `crucible_bench` binary (in `eclair-bench`) sweeps a fixed
//! scenario grid and commits the byte-reproducible result as
//! `BENCH_crucible.json`; the repo-level golden corpus (`tests/golden/`)
//! snapshots canonical scenarios end to end.

mod oracles;
mod rng;
mod runner;
mod scenario;
mod shrink;

pub use oracles::{evaluate, registry, Evaluation, Oracle, Verdict, Violation};
pub use rng::SplitMix64;
pub use runner::{run_scenario, LadderPoint, ScenarioRun};
pub use scenario::{Scenario, CHAOS_RATES, PROFILES};
pub use shrink::{repro_snippet, shrink, ShrinkResult};

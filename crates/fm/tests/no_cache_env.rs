//! The `ECLAIR_NO_CACHE=1` kill switch must bypass the shared perception
//! layer *entirely* — not merely disable lookups. This lives in its own
//! integration binary because environment variables are process-global
//! and the workspace test harness is multi-threaded; here the variable is
//! set once, before any cache code runs, and never unset.

use std::sync::Arc;

use eclair_fm::{shared_percept_cache, FmModel, ModelProfile};
use eclair_gui::PageBuilder;

#[test]
fn kill_switch_bypasses_the_shared_layer_entirely() {
    std::env::set_var("ECLAIR_NO_CACHE", "1");

    let mut b = PageBuilder::new("k", "/k");
    b.button("ok", "Confirm order");
    let shot = b.finish().screenshot_at(0);

    let cache = shared_percept_cache();
    let mut m = FmModel::new(ModelProfile::gpt4v(), 9);
    m.attach_shared(Arc::clone(&cache));
    assert!(
        m.shared_cache().is_none(),
        "attach_shared must refuse the handle under the kill switch"
    );

    // Perception still works, is still deterministic, and the global
    // shards never see a single lookup or insertion.
    eclair_trace::perf::reset();
    let p1 = m.perceive(&shot);
    let p2 = m.perceive(&shot);
    assert_eq!(p1, p2);
    assert!(cache.is_empty(), "no percept may reach the shared shards");
    assert_eq!(cache.stats(), Default::default(), "no lookups either");
    let c = eclair_trace::perf::snapshot();
    assert_eq!(c.shared_hits + c.shared_misses + c.single_flight_waits, 0);
    assert_eq!(c.perceive_memo_hits, 0, "local memo is off too");

    // Even force-enabling the instance memo afterwards must not resurrect
    // the shared layer: the handle was never installed.
    m.set_cache_enabled(true);
    let p3 = m.perceive(&shot);
    assert_eq!(p1, p3);
    assert!(cache.is_empty());
}

//! The model handle: a profile + seeded RNG + token meter.
//!
//! Everything ECLAIR asks of a foundation model flows through [`FmModel`],
//! so experiments can (a) swap profiles (GPT-4 vs CogAgent vs oracle),
//! (b) reproduce runs exactly from a seed, and (c) read off token costs.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use eclair_gui::Screenshot;
use eclair_shared::{Outcome, ShardedCache};
use eclair_trace::{CostKind, EventKind, TraceRecorder, VirtualClock};
use eclair_vision::marks::{Mark, MarkedScreenshot};

use crate::ground::{native_ground, select_mark, GroundingOutcome};
use crate::percept::{perceive, ScenePercept};
use crate::profile::ModelProfile;
use crate::prompt::Prompt;
use crate::sampling::{judge_ensemble, Judgment, Sampling};
use crate::tokens::TokenMeter;

/// The full purity tuple a percept is keyed by, in any cache, local or
/// shared: `(model seed, profile fingerprint, frame hash)`. Perception is
/// a pure function of exactly this tuple — keying on anything less (the
/// old memo used the bare frame hash) cross-serves percepts the moment a
/// cache is shared between models with different seeds or profiles.
pub type PerceptKey = (u64, u64, u64);

/// A fleet-wide shared percept cache: every worker and every run of a
/// fleet may hold a handle to the same instance (see `eclair-shared` for
/// the lock-striping and single-flight protocol).
pub type SharedPerceptCache = ShardedCache<PerceptKey, ScenePercept>;

/// Build a shared percept cache at the fleet default geometry: 16 lock
/// stripes × 256 percepts per stripe. Workers touching different stripes
/// never serialize; 4096 resident percepts comfortably covers a 30-task
/// suite's distinct frames.
pub fn shared_percept_cache() -> Arc<SharedPerceptCache> {
    Arc::new(ShardedCache::new(16, 256))
}

/// A live (simulated) foundation model.
///
/// ```
/// use eclair_fm::{FmModel, ModelProfile};
/// use eclair_gui::PageBuilder;
///
/// let mut b = PageBuilder::new("page", "/page");
/// b.button("ok", "Confirm order");
/// let shot = b.finish().screenshot_at(0);
///
/// let mut model = FmModel::new(ModelProfile::oracle(), 7);
/// let percept = model.perceive(&shot);
/// assert!(percept.full_text().contains("Confirm order"));
/// ```
#[derive(Debug)]
pub struct FmModel {
    profile: ModelProfile,
    /// The construction seed, kept so per-frame perception streams can be
    /// derived from it (see [`Self::perceive`]).
    seed: u64,
    rng: StdRng,
    meter: TokenMeter,
    sampling: Sampling,
    trace: TraceRecorder,
    /// Whether perception memoization is on (`ECLAIR_NO_CACHE=1` turns it
    /// off globally). Flipping it must be unobservable outside
    /// `eclair_trace::perf`.
    cache_enabled: bool,
    /// FNV-1a fingerprint of the full profile (its `Debug` rendering, a
    /// superset of the name): part of every percept key, so two profiles
    /// that share a name but differ in any capability parameter still
    /// key separately.
    profile_fp: u64,
    /// Bounded memo of perception results keyed by the full purity tuple.
    percept_memo: std::collections::HashMap<PerceptKey, ScenePercept>,
    /// Insertion order of `percept_memo` keys, for eviction.
    percept_order: std::collections::VecDeque<PerceptKey>,
    /// Fleet-wide shared cache, consulted when the per-instance memo
    /// misses. `None` outside a fleet or under `ECLAIR_NO_CACHE=1`.
    shared: Option<Arc<SharedPerceptCache>>,
}

/// Most perception results kept in the memo. Executors revisit a handful
/// of frames per task (probe loops, validators re-reading the screen);
/// the cap just bounds memory on long sessions.
const PERCEPT_MEMO_CAP: usize = 64;

/// SplitMix64 finalizer-style mixer (same construction as
/// `eclair_fleet::derive_seed` / the chaos schedule): derives the seed of
/// an independent per-frame perception stream from the model seed, the
/// profile, and the frame hash.
fn mix(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string (keys the profile into the perception stream).
fn fnv_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FmModel {
    /// Instantiate a model from a profile and a seed.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        let mut trace = TraceRecorder::new();
        // Run id 0 by default; the fleet re-seats the clock per run via
        // `TraceRecorder::set_clock` before execution starts.
        trace.set_clock(VirtualClock::new(seed, 0));
        let profile_fp = fnv_str(&format!("{profile:?}"));
        Self {
            profile,
            seed,
            rng: StdRng::seed_from_u64(seed),
            meter: TokenMeter::default(),
            sampling: Sampling::greedy(),
            trace,
            cache_enabled: !eclair_gui::no_cache_env(),
            profile_fp,
            percept_memo: std::collections::HashMap::new(),
            percept_order: std::collections::VecDeque::new(),
            shared: None,
        }
    }

    /// Turn perception memoization on or off for this model instance.
    ///
    /// Flipping drops only *this instance's* pins (its local memo); a
    /// shared cache attached via [`Self::attach_shared`] is untouched —
    /// other workers' entries, and even this model's own published
    /// percepts, stay resident in the global shards.
    pub fn set_cache_enabled(&mut self, on: bool) {
        if self.cache_enabled != on {
            self.cache_enabled = on;
            self.percept_memo.clear();
            self.percept_order.clear();
        }
    }

    /// Attach a fleet-wide shared percept cache. Consulted after the
    /// per-instance memo, before the full perception pass. Under the
    /// `ECLAIR_NO_CACHE=1` kill switch this is a no-op: the shared layer
    /// is bypassed entirely, not merely disabled.
    pub fn attach_shared(&mut self, cache: Arc<SharedPerceptCache>) {
        if eclair_gui::no_cache_env() {
            return;
        }
        self.shared = Some(cache);
    }

    /// The attached shared percept cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedPerceptCache>> {
        self.shared.as_ref()
    }

    /// The model's capability profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Cumulative token usage.
    pub fn meter(&self) -> &TokenMeter {
        &self.meter
    }

    /// The structured trace of everything this model has been asked to do.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Mutable trace access — the pipeline layers above open spans and
    /// emit their own events here so one recorder holds the whole run.
    pub fn trace_mut(&mut self) -> &mut TraceRecorder {
        &mut self.trace
    }

    /// Record one FM call against the meter *and* the trace. Every token
    /// the meter sees flows through here, so the trace's rolled-up call
    /// and token counts always agree with [`Self::meter`].
    pub fn account(&mut self, purpose: &str, prompt_tokens: u64, completion_tokens: u64) {
        self.meter.record(prompt_tokens, completion_tokens);
        // Advance simulated time before emitting, so the event is stamped
        // with the post-call clock. Decode dominates real FM latency,
        // hence the 4× completion weight. This is the single advance
        // point for FM work: a memoized perception accounts the same
        // tokens as the recompute, so the clock stays cache-transparent.
        let kind = if purpose == "perceive" {
            CostKind::Perceive
        } else {
            CostKind::FmCall
        };
        self.trace
            .advance(kind, prompt_tokens + 4 * completion_tokens);
        self.trace.event(EventKind::FmCall {
            purpose: purpose.to_string(),
            prompt_tokens,
            completion_tokens,
        });
    }

    /// Set the sampling configuration for subsequent judgments.
    pub fn set_sampling(&mut self, sampling: Sampling) {
        self.sampling = sampling;
    }

    /// Current sampling configuration.
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// Account for a prompt being sent and a completion of `completion_tokens`.
    pub fn charge(&mut self, prompt: &Prompt, completion_tokens: u64) {
        self.account("prompt", prompt.tokens(), completion_tokens);
    }

    /// Direct RNG access for capability modules layered on top (the agent
    /// pipeline in `eclair-core` threads all its noise through the model's
    /// RNG so a run is reproducible from one seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Parse a screenshot into the model's internal scene representation.
    /// Priced like one image-bearing prompt (the [`crate::prompt::Part`]
    /// schedule) with a completion proportional to the elements read out.
    ///
    /// Perception noise draws from a *pure* per-frame stream seeded by
    /// `(model seed, profile, frame hash)` — never from the model's main
    /// RNG — so perceiving the same frame twice yields the same percept
    /// and perturbs nothing downstream. That purity is what licenses the
    /// bounded memo *and* the fleet-wide shared cache behind it: a hit at
    /// either layer returns the stored percept *and accounts the exact
    /// tokens the recompute would have*, keeping the meter and the trace
    /// byte-identical with both caches off. The tokens a provider-side
    /// cache would have saved are reported only through the quarantined
    /// `eclair_trace::perf` counters (`cached_tokens` for the memo,
    /// `shared_cached_tokens` for the shared layer).
    pub fn perceive(&mut self, shot: &Screenshot) -> ScenePercept {
        let frame = shot.frame_hash();
        let key: PerceptKey = (self.seed, self.profile_fp, frame);
        let prompt_tokens = 85 + 4 * shot.items.len() as u64;
        if self.cache_enabled {
            if let Some(percept) = self.percept_memo.get(&key).cloned() {
                let completion_tokens = 2 + 4 * percept.elements.len() as u64;
                self.account("perceive", prompt_tokens, completion_tokens);
                eclair_trace::perf::record(|c| {
                    c.perceive_memo_hits += 1;
                    c.cached_tokens += prompt_tokens + completion_tokens;
                });
                return percept;
            }
            eclair_trace::perf::record(|c| c.perceive_memo_misses += 1);
        }
        // L2: the fleet-wide shared cache. Because the key carries the
        // full purity tuple, whatever any worker published under it is
        // exactly what this model would compute — and single-flight means
        // concurrent identical requests run the perception pass once.
        let percept = match (self.cache_enabled, self.shared.clone()) {
            (true, Some(shared)) => {
                let (seed, profile) = (self.seed, &self.profile);
                let (percept, outcome) = shared.get_or_compute(key, || {
                    let stream_seed = mix(mix(seed, fnv_str(&profile.name)), frame);
                    perceive(shot, profile, &mut StdRng::seed_from_u64(stream_seed))
                });
                let completion_tokens = 2 + 4 * percept.elements.len() as u64;
                eclair_trace::perf::record(|c| match outcome {
                    Outcome::Hit => {
                        c.shared_hits += 1;
                        c.shared_cached_tokens += prompt_tokens + completion_tokens;
                    }
                    Outcome::Coalesced => {
                        c.single_flight_waits += 1;
                        c.shared_cached_tokens += prompt_tokens + completion_tokens;
                    }
                    Outcome::Computed { evicted } => {
                        c.shared_misses += 1;
                        if evicted {
                            c.shared_evictions += 1;
                        }
                    }
                });
                percept
            }
            _ => {
                let stream_seed = mix(mix(self.seed, fnv_str(&self.profile.name)), frame);
                let mut stream = StdRng::seed_from_u64(stream_seed);
                perceive(shot, &self.profile, &mut stream)
            }
        };
        self.account(
            "perceive",
            prompt_tokens,
            2 + 4 * percept.elements.len() as u64,
        );
        if self.cache_enabled {
            if self.percept_memo.len() >= PERCEPT_MEMO_CAP {
                if let Some(oldest) = self.percept_order.pop_front() {
                    self.percept_memo.remove(&oldest);
                }
            }
            if self.percept_memo.insert(key, percept.clone()).is_none() {
                self.percept_order.push_back(key);
            }
        }
        percept
    }

    /// Native grounding: emit a bounding box for a description.
    pub fn ground_native(&mut self, shot: &Screenshot, description: &str) -> GroundingOutcome {
        let percept = self.perceive(shot);
        let out = native_ground(&self.profile, &percept, description, &mut self.rng);
        self.account(
            "ground_native",
            85 + 4 * shot.items.len() as u64 + (description.len() as u64).div_ceil(4),
            12,
        );
        out
    }

    /// Set-of-marks grounding: choose a candidate label.
    pub fn ground_marks(
        &mut self,
        marked: &MarkedScreenshot,
        description: &str,
    ) -> GroundingOutcome {
        let out = select_mark(&self.profile, &marked.marks, description, &mut self.rng);
        self.account(
            "ground_marks",
            85 + 4 * marked.shot.items.len() as u64
                + 3 * marked.marks.len() as u64
                + (description.len() as u64).div_ceil(4),
            8,
        );
        out
    }

    /// As [`Self::ground_marks`] but with an explicit mark slice.
    pub fn ground_mark_slice(&mut self, marks: &[Mark], description: &str) -> GroundingOutcome {
        let out = select_mark(&self.profile, marks, description, &mut self.rng);
        self.account(
            "ground_marks",
            85 + 3 * marks.len() as u64 + (description.len() as u64).div_ceil(4),
            8,
        );
        out
    }

    /// Binary judgment from signed evidence strength, under the current
    /// sampling configuration. Self-consistency ensembles produce one
    /// completion per vote but are still a single accounted call.
    pub fn judge(&mut self, evidence: f64) -> Judgment {
        let out = judge_ensemble(
            evidence,
            self.profile.judgment_noise,
            self.sampling,
            &mut self.rng,
        );
        self.account(
            "judge",
            120,
            8 * self.sampling.self_consistency.max(1) as u64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::PageBuilder;

    fn shot() -> Screenshot {
        let mut b = PageBuilder::new("m", "/m");
        b.button("ok", "Confirm order");
        b.finish().screenshot_at(0)
    }

    #[test]
    fn same_seed_same_behaviour() {
        let run = || {
            let mut m = FmModel::new(ModelProfile::gpt4v(), 99);
            let p = m.perceive(&shot());
            let g = m.ground_native(&shot(), "Confirm order");
            let j = m.judge(0.2);
            (p, g, j.verdict)
        };
        assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
    }

    #[test]
    fn meter_accumulates() {
        let mut m = FmModel::new(ModelProfile::gpt4v(), 1);
        let p = Prompt::new("sys").text("hello world");
        m.charge(&p, 50);
        m.charge(&p, 10);
        assert_eq!(m.meter().calls, 2);
        assert!(m.meter().prompt_tokens > 0);
        assert_eq!(m.meter().completion_tokens, 60);
    }

    #[test]
    fn every_metered_call_is_traced() {
        let mut m = FmModel::new(ModelProfile::gpt4v(), 4);
        let s = shot();
        let _ = m.perceive(&s);
        let _ = m.ground_native(&s, "Confirm order");
        let _ = m.judge(0.1);
        let summary = m.trace().summary();
        assert_eq!(summary.fm_calls(), m.meter().calls);
        assert_eq!(summary.total().prompt_tokens, m.meter().prompt_tokens);
        assert_eq!(
            summary.total().completion_tokens,
            m.meter().completion_tokens
        );
    }

    #[test]
    fn sampling_is_configurable() {
        let mut m = FmModel::new(ModelProfile::gpt4v(), 1);
        m.set_sampling(Sampling::vote(5, 0.3));
        assert_eq!(m.sampling().self_consistency, 5);
        let _ = m.judge(0.5);
    }

    #[test]
    fn perceive_draws_from_a_pure_stream_not_the_main_rng() {
        use rand::Rng;
        let s = shot();
        // Same seed, different number of perceives: the main RNG must be
        // in the same state either way.
        let mut a = FmModel::new(ModelProfile::gpt4v(), 11);
        let mut b = FmModel::new(ModelProfile::gpt4v(), 11);
        let _ = a.perceive(&s);
        let _ = a.perceive(&s);
        let _ = a.perceive(&s);
        let _ = b.perceive(&s);
        assert_eq!(
            a.rng().gen::<u64>(),
            b.rng().gen::<u64>(),
            "perceive must not consume main-RNG draws"
        );
        // And perceiving the same frame is idempotent.
        let mut c = FmModel::new(ModelProfile::gpt4v(), 11);
        assert_eq!(c.perceive(&s), c.perceive(&s));
    }

    #[test]
    fn memoized_perceive_is_transparent_to_meter_and_trace() {
        eclair_trace::perf::reset();
        let s = shot();
        let run = |cache: bool| {
            let mut m = FmModel::new(ModelProfile::gpt4v(), 23);
            m.set_cache_enabled(cache);
            let p1 = m.perceive(&s);
            let p2 = m.perceive(&s);
            (p1, p2, *m.meter(), m.trace().to_jsonl())
        };
        let (on1, on2, on_meter, on_trace) = run(true);
        let (off1, off2, off_meter, off_trace) = run(false);
        assert_eq!(on1, off1);
        assert_eq!(on2, off2);
        assert_eq!(on_meter, off_meter, "memo hits account identical tokens");
        assert_eq!(on_trace, off_trace, "trace bytes identical either way");
        let c = eclair_trace::perf::snapshot();
        assert_eq!(c.perceive_memo_hits, 1, "second cache-on perceive hit");
        assert_eq!(c.perceive_memo_misses, 1);
        assert!(
            c.cached_tokens > 0,
            "hit tokens land in the perf quarantine"
        );
    }

    #[test]
    fn shared_cache_never_cross_serves_between_seeds_or_profiles() {
        // The headline bugfix: the percept key carries the full purity
        // tuple, so models differing in seed or profile that share one
        // cache can never serve each other's percepts.
        let s = shot();
        let cache = shared_percept_cache();
        let baseline = |profile: ModelProfile, seed: u64| {
            let mut m = FmModel::new(profile, seed);
            m.set_cache_enabled(false);
            m.perceive(&s)
        };
        let mut a = FmModel::new(ModelProfile::gpt4v(), 1);
        let mut b = FmModel::new(ModelProfile::gpt4v(), 2); // same profile, new seed
        let mut c = FmModel::new(ModelProfile::cogagent_18b(), 1); // same seed, new profile
        for m in [&mut a, &mut b, &mut c] {
            m.attach_shared(Arc::clone(&cache));
        }
        assert_eq!(a.perceive(&s), baseline(ModelProfile::gpt4v(), 1));
        assert_eq!(b.perceive(&s), baseline(ModelProfile::gpt4v(), 2));
        assert_eq!(c.perceive(&s), baseline(ModelProfile::cogagent_18b(), 1));
        assert_eq!(cache.len(), 3, "three distinct keys for one frame");
        assert_eq!(cache.stats().hits, 0, "no cross-serving between tuples");
    }

    #[test]
    fn shared_cache_hit_is_transparent_to_meter_and_trace() {
        eclair_trace::perf::reset();
        let s = shot();
        let cache = shared_percept_cache();
        let run = |attach: bool| {
            let mut m = FmModel::new(ModelProfile::gpt4v(), 31);
            if attach {
                m.attach_shared(Arc::clone(&cache));
            }
            let p = m.perceive(&s);
            (p, *m.meter(), m.trace().to_jsonl())
        };
        let (miss_p, miss_meter, miss_trace) = run(true); // populates the shard
        let (hit_p, hit_meter, hit_trace) = run(true); // fresh instance: memo cold, shared hot
        let (off_p, off_meter, off_trace) = run(false); // no shared layer at all
        assert_eq!(miss_p, hit_p);
        assert_eq!(hit_p, off_p);
        assert_eq!(
            miss_meter, hit_meter,
            "shared hits account identical tokens"
        );
        assert_eq!(hit_meter, off_meter);
        assert_eq!(miss_trace, hit_trace, "trace bytes identical either way");
        assert_eq!(hit_trace, off_trace);
        let c = eclair_trace::perf::snapshot();
        assert_eq!(c.shared_misses, 1, "first instance computed");
        assert_eq!(c.shared_hits, 1, "second instance served by the shard");
        assert!(c.shared_cached_tokens > 0, "savings land in the quarantine");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_flip_drops_instance_pins_but_not_the_global_shard() {
        eclair_trace::perf::reset();
        let s = shot();
        let cache = shared_percept_cache();
        let mut m = FmModel::new(ModelProfile::gpt4v(), 47);
        m.attach_shared(Arc::clone(&cache));
        let first = m.perceive(&s); // computes, pins locally + publishes globally
        m.set_cache_enabled(false);
        m.set_cache_enabled(true);
        assert_eq!(cache.len(), 1, "flip must not clear the global shard");
        let second = m.perceive(&s);
        assert_eq!(first, second);
        let c = eclair_trace::perf::snapshot();
        assert_eq!(
            (c.perceive_memo_hits, c.shared_hits),
            (0, 1),
            "after the flip the local pins are gone but the shard serves"
        );
    }

    #[test]
    fn oracle_model_grounds_perfectly() {
        let mut m = FmModel::new(ModelProfile::oracle(), 7);
        let s = shot();
        match m.ground_native(&s, "Confirm order") {
            GroundingOutcome::Box(r) => {
                let target = s
                    .items
                    .iter()
                    .find(|i| i.text == "Confirm order")
                    .unwrap()
                    .rect;
                assert!(target.contains(r.center()));
            }
            other => panic!("expected box, got {other:?}"),
        }
    }
}

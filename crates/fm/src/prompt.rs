//! Prompt assembly.
//!
//! Experiments differ only in *which evidence enters the context window*
//! (WD vs WD+KF vs WD+KF+ACT; with or without SOP; marked or raw
//! screenshots). [`Prompt`] makes that explicit and measurable: harnesses
//! build prompts, the token meter prices them, and the model consumes the
//! structured parts directly.

use serde::{Deserialize, Serialize};

use eclair_gui::Screenshot;
use eclair_vision::marks::MarkedScreenshot;

/// One piece of a prompt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Part {
    /// Instruction or evidence text.
    Text(String),
    /// A raw screenshot.
    Image(Screenshot),
    /// A screenshot with set-of-marks overlay.
    MarkedImage(MarkedScreenshot),
}

impl Part {
    /// Approximate token cost of this part (text ≈ 1 token / 4 chars;
    /// images priced like high-detail GPT-4V tiles: a flat base plus a per-
    /// item term since our screenshots are structured).
    pub fn tokens(&self) -> u64 {
        match self {
            Part::Text(t) => (t.len() as u64).div_ceil(4),
            Part::Image(s) => 85 + 4 * s.items.len() as u64,
            Part::MarkedImage(m) => 85 + 4 * m.shot.items.len() as u64 + 3 * m.marks.len() as u64,
        }
    }
}

/// A full prompt: ordered parts plus a system preamble.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Prompt {
    /// System / task framing text.
    pub system: String,
    /// Ordered content parts.
    pub parts: Vec<Part>,
}

impl Prompt {
    /// Start a prompt with a system preamble.
    pub fn new(system: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            parts: Vec::new(),
        }
    }

    /// Append a text part.
    pub fn text(mut self, t: impl Into<String>) -> Self {
        self.parts.push(Part::Text(t.into()));
        self
    }

    /// Append an image part.
    pub fn image(mut self, s: Screenshot) -> Self {
        self.parts.push(Part::Image(s));
        self
    }

    /// Append a marked-image part.
    pub fn marked_image(mut self, m: MarkedScreenshot) -> Self {
        self.parts.push(Part::MarkedImage(m));
        self
    }

    /// Total prompt tokens.
    pub fn tokens(&self) -> u64 {
        (self.system.len() as u64).div_ceil(4) + self.parts.iter().map(Part::tokens).sum::<u64>()
    }

    /// Number of image parts (multimodal calls cost more).
    pub fn image_count(&self) -> usize {
        self.parts
            .iter()
            .filter(|p| !matches!(p, Part::Text(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::PageBuilder;

    fn shot() -> Screenshot {
        let mut b = PageBuilder::new("t", "/t");
        b.heading(1, "Hello");
        b.button("x", "Do thing");
        b.finish().screenshot_at(0)
    }

    #[test]
    fn token_accounting_sums_parts() {
        let p = Prompt::new("You are a workflow agent.")
            .text("Workflow: create an issue")
            .image(shot());
        assert!(p.tokens() > 85, "image base cost included");
        assert_eq!(p.image_count(), 1);
        let p2 = p.clone().image(shot());
        assert!(p2.tokens() > p.tokens());
        assert_eq!(p2.image_count(), 2);
    }

    #[test]
    fn text_tokens_are_chars_over_four() {
        let p = Prompt::new("").text("abcdefgh"); // 8 chars -> 2 tokens
        assert_eq!(p.tokens(), 2);
    }

    #[test]
    fn marked_image_costs_more_than_plain() {
        let page = {
            let mut b = PageBuilder::new("m", "/m");
            b.button("a", "A");
            b.button("b", "B");
            b.finish()
        };
        let plain = Part::Image(page.screenshot_at(0));
        let marked = Part::MarkedImage(eclair_vision::marks::marks_from_html(&page, 0));
        assert!(marked.tokens() > plain.tokens());
    }
}

//! Token and dollar accounting for FM calls.
//!
//! The case studies (§3) argue economics: RPA costs $150k + consultants +
//! FTEs; an FM agent costs API calls. The meter lets the case-study bench
//! put real numbers on ECLAIR's side of the comparison.

use serde::{Deserialize, Serialize};

/// Cumulative usage across a model's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenMeter {
    /// Prompt (input) tokens consumed.
    pub prompt_tokens: u64,
    /// Completion (output) tokens produced.
    pub completion_tokens: u64,
    /// Number of model calls.
    pub calls: u64,
}

/// Pricing per million tokens, in USD (GPT-4-Turbo-era list prices, which
/// is what the paper's experiments would have paid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// $ per 1M prompt tokens.
    pub prompt_per_m: f64,
    /// $ per 1M completion tokens.
    pub completion_per_m: f64,
}

impl Pricing {
    /// GPT-4 Turbo with vision list pricing ($10 / $30 per 1M).
    pub fn gpt4_turbo() -> Self {
        Self {
            prompt_per_m: 10.0,
            completion_per_m: 30.0,
        }
    }

    /// A small self-hosted GUI model (amortized serving cost estimate).
    pub fn self_hosted_18b() -> Self {
        Self {
            prompt_per_m: 0.6,
            completion_per_m: 0.6,
        }
    }
}

impl TokenMeter {
    /// Record one call.
    pub fn record(&mut self, prompt_tokens: u64, completion_tokens: u64) {
        self.prompt_tokens += prompt_tokens;
        self.completion_tokens += completion_tokens;
        self.calls += 1;
    }

    /// Merge another meter (e.g. across agents in an ensemble).
    pub fn merge(&mut self, other: &TokenMeter) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.calls += other.calls;
    }

    /// Total tokens either direction.
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Dollar cost under a pricing schedule.
    pub fn cost_usd(&self, pricing: Pricing) -> f64 {
        self.prompt_tokens as f64 / 1e6 * pricing.prompt_per_m
            + self.completion_tokens as f64 / 1e6 * pricing.completion_per_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_cost() {
        let mut m = TokenMeter::default();
        m.record(1_000_000, 100_000);
        m.record(500_000, 0);
        assert_eq!(m.calls, 2);
        assert_eq!(m.total_tokens(), 1_600_000);
        let c = m.cost_usd(Pricing::gpt4_turbo());
        assert!((c - (15.0 + 3.0)).abs() < 1e-9, "got {c}");
    }

    #[test]
    fn merge_adds() {
        let mut a = TokenMeter::default();
        a.record(10, 20);
        let mut b = TokenMeter::default();
        b.record(1, 2);
        a.merge(&b);
        assert_eq!(a.prompt_tokens, 11);
        assert_eq!(a.completion_tokens, 22);
        assert_eq!(a.calls, 2);
    }

    #[test]
    fn self_hosted_is_cheaper() {
        let mut m = TokenMeter::default();
        m.record(1_000_000, 1_000_000);
        assert!(m.cost_usd(Pricing::self_hosted_18b()) < m.cost_usd(Pricing::gpt4_turbo()));
    }
}

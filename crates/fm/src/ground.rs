//! Grounding: mapping a natural-language element description to pixels.
//!
//! Table 3 evaluates exactly two regimes:
//!
//! * **native** ([`native_ground`]) — the model emits a bounding box
//!   directly from its internal percept. Generalist models (GPT-4) carry
//!   large positional uncertainty; GUI-tuned models (CogAgent) are tight.
//! * **set-of-marks** ([`select_mark`]) — candidate boxes are drawn on the
//!   image with numeric labels and the model only has to *choose a number*.
//!   Errors shift from localization to selection: missing candidates
//!   (detector misses), duplicate labels, tag/role mismatches ("the profile
//!   *button*" rendering as `<svg>`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use eclair_gui::{Point, Rect};
use eclair_vision::marks::Mark;

use crate::percept::ScenePercept;
use crate::profile::ModelProfile;
use crate::text::fuzzy_similarity;

/// The result of a grounding call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroundingOutcome {
    /// A predicted bounding box (native regime).
    Box(Rect),
    /// A selected mark label (set-of-marks regime).
    Mark(u32),
    /// The model declined (nothing plausible on screen).
    Abstain,
}

impl GroundingOutcome {
    /// The click point this outcome implies, resolving marks through the
    /// provided mark list.
    pub fn click_point(&self, marks: &[Mark]) -> Option<Point> {
        match self {
            GroundingOutcome::Box(r) => Some(r.center()),
            GroundingOutcome::Mark(l) => marks
                .iter()
                .find(|m| m.label == *l)
                .map(|m| m.rect.center()),
            GroundingOutcome::Abstain => None,
        }
    }
}

/// Box-Muller standard normal (rand 0.8 has no normal distribution without
/// `rand_distr`, which is outside the sanctioned dependency set).
fn normal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn visual_hint(v: eclair_gui::VisualClass) -> &'static str {
    use eclair_gui::VisualClass as V;
    match v {
        V::BoxButton => "button",
        V::TextLink => "a",
        V::InputBox => "input",
        V::CheckGlyph | V::RadioGlyph => "input",
        V::IconGlyph => "svg",
        _ => "p",
    }
}

/// Native grounding: emit a bounding box for `description` given the
/// model's percept of the screen. Internally the model performs the same
/// description-to-element matching it would over visible marks — the
/// candidates are its *own* (lossy) percept — and then serializes the
/// answer into coordinates, which adds the positional noise that separates
/// GPT-4 from CogAgent.
pub fn native_ground<R: Rng>(
    profile: &ModelProfile,
    percept: &ScenePercept,
    description: &str,
    rng: &mut R,
) -> GroundingOutcome {
    if percept.elements.is_empty() {
        return GroundingOutcome::Abstain;
    }
    // Candidates: perceived interactive elements, as internal pseudo-marks.
    let marks: Vec<Mark> = percept
        .elements
        .iter()
        .enumerate()
        .filter(|(_, e)| e.looks_interactive())
        .map(|(i, e)| Mark {
            label: i as u32,
            rect: e.rect,
            text: e.text.clone(),
            hint: visual_hint(e.visual).to_string(),
        })
        .collect();
    if marks.is_empty() {
        return GroundingOutcome::Abstain;
    }
    let mut idx = match select_mark(profile, &marks, description, rng) {
        GroundingOutcome::Mark(l) => l as usize,
        _ => return GroundingOutcome::Abstain,
    };
    // Gross grounding error: attention lands on a different element while
    // the answer is serialized.
    if rng.gen_bool(profile.native_gross_error) && percept.elements.len() > 1 {
        let mut other = rng.gen_range(0..percept.elements.len());
        if other == idx {
            other = (other + 1) % percept.elements.len();
        }
        idx = other;
    }
    let base = percept.elements[idx].rect;
    // Positional uncertainty when serializing the location into
    // coordinates: the defining weakness of generalist models.
    let dx = normal(rng, profile.native_sigma_x);
    let dy = normal(rng, profile.native_sigma_y);
    let scale = rng.gen_range(0.8..1.3);
    let w = ((base.w as f64) * scale).max(6.0) as u32;
    let h = ((base.h as f64) * scale).max(6.0) as u32;
    let cx = base.center().x as f64 + dx;
    let cy = base.center().y as f64 + dy;
    GroundingOutcome::Box(Rect::new(
        (cx - w as f64 / 2.0).round() as i32,
        (cy - h as f64 / 2.0).round() as i32,
        w,
        h,
    ))
}

/// Role words a description may carry; they describe the widget's kind,
/// not its text.
const ROLE_WORDS: &[&str] = &[
    "the", "a", "an", "field", "fields", "dropdown", "button", "link", "tab", "checkbox", "icon",
    "box", "input", "area",
];

fn core_terms(description: &str) -> Vec<String> {
    crate::text::tokens(description)
        .into_iter()
        .filter(|t| !ROLE_WORDS.contains(&t.as_str()))
        .collect()
}

/// Score every mark against a description. Public so experiments can
/// inspect the ranking the model saw.
pub fn score_marks(description: &str, marks: &[Mark]) -> Vec<(u32, f64)> {
    let lower = description.to_lowercase();
    let wants_button = lower.contains("button") || lower.contains("link") || lower.contains("tab");
    let wants_field = lower.contains("field")
        || lower.contains("dropdown")
        || lower.contains("box")
        || lower.contains("area");
    let core = core_terms(description);
    let core_joined = core.join(" ");
    marks
        .iter()
        .map(|m| {
            let mut s = if m.text.is_empty() {
                // Unlabeled candidate (icon): only positional/role priors
                // remain — worth very little.
                0.05
            } else {
                let text_tokens = crate::text::tokens(&m.text);
                let all_present = !core.is_empty() && core.iter().all(|t| text_tokens.contains(t));
                // Subword agreement ("Ship" ↔ "Create shipment") keeps a
                // relabeled control findable — the semantic robustness that
                // separates FM grounding from string-matching selectors.
                let subword = core
                    .iter()
                    .any(|q| q.len() >= 4 && text_tokens.iter().any(|t| t.contains(q.as_str())));
                let base = fuzzy_similarity(&m.text, &core_joined)
                    .max(crate::text::stem_overlap(&m.text, &core_joined) * 0.9);
                if all_present {
                    base.max(0.75)
                } else if subword {
                    base.max(0.45)
                } else {
                    base
                }
            };
            // Role mismatch: asked for a "button" but the candidate's
            // tag/class hint says otherwise (the `<svg>` failure of §4.2.1)
            // — and vice versa for fields.
            let hint = m.hint.to_lowercase();
            let buttonish = hint.contains("button") || hint == "a" || hint.contains("link");
            let fieldish =
                hint.contains("input") || hint.contains("textarea") || hint.contains("select");
            if wants_button && !buttonish {
                s *= 0.55;
            }
            if wants_field && !fieldish {
                s *= 0.5;
            }
            (m.label, s)
        })
        .collect()
}

/// Set-of-marks grounding: choose a mark label for `description`.
pub fn select_mark<R: Rng>(
    profile: &ModelProfile,
    marks: &[Mark],
    description: &str,
    rng: &mut R,
) -> GroundingOutcome {
    if marks.is_empty() {
        return GroundingOutcome::Abstain;
    }
    let mut scored = score_marks(description, marks);
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });
    let (best_label, best_score) = scored[0];
    // Nothing plausibly matches: the target is probably not among the
    // candidates (detector miss / unlabeled icon). The model still has to
    // answer — it guesses among the top-scoring junk.
    if best_score < 0.25 {
        // The target may have been relabeled, missed by the detector, or be
        // an unlabeled icon. Fall back to a role prior — asked to act on a
        // field, pick among the inputs; otherwise among the clickables
        // ("when unsure, the submit button is the button"). This is what
        // lets an FM agent survive UI relabeling that breaks rule-based
        // selectors.
        let lower = description.to_lowercase();
        let wants_field = lower.contains("field")
            || lower.contains("dropdown")
            || lower.contains("box")
            || lower.contains("area");
        let roleish: Vec<u32> = marks
            .iter()
            .filter(|m| {
                let hint = m.hint.to_lowercase();
                let fieldish =
                    hint.contains("input") || hint.contains("textarea") || hint.contains("select");
                let buttonish = hint.contains("button") || hint == "a" || hint.contains("link");
                if wants_field {
                    fieldish
                } else {
                    buttonish
                }
            })
            .map(|m| m.label)
            .collect();
        if !roleish.is_empty() {
            let label = roleish[rng.gen_range(0..roleish.len())];
            return GroundingOutcome::Mark(label);
        }
        let k = scored.len().min(5);
        let (label, _) = scored[rng.gen_range(0..k)];
        return GroundingOutcome::Mark(label);
    }
    // Near-tie between the top two (duplicate labels): a coin flip.
    if scored.len() > 1 && (best_score - scored[1].1) < 0.05 && rng.gen_bool(0.5) {
        return GroundingOutcome::Mark(scored[1].0);
    }
    // Residual selection noise, scaled by how close the runner-up is —
    // attention slips happen among lookalikes, not against a clear winner.
    if scored.len() > 1 {
        let gap = (best_score - scored[1].1).clamp(0.0, 1.0);
        // A floor keeps some residual error even against clear winners —
        // large models do occasionally emit the wrong label outright.
        let slip_p = profile.mark_selection_noise * (1.0 - gap * 2.0).clamp(0.35, 1.0);
        if slip_p > 0.0 && rng.gen_bool(slip_p) {
            return GroundingOutcome::Mark(scored[1].0);
        }
    }
    GroundingOutcome::Mark(best_label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percept::perceive;
    use eclair_gui::PageBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn page() -> eclair_gui::Page {
        let mut b = PageBuilder::new("g", "/g");
        b.heading(1, "Project members");
        b.row(|b| {
            b.button("invite", "Invite member");
            b.button("remove", "Remove member");
        });
        b.icon_button("gear", "Project settings");
        b.text_input("filter", "Filter", "search");
        b.finish()
    }

    fn marks() -> Vec<Mark> {
        let p = page();
        eclair_vision::marks::marks_from_html(&p, 0).marks
    }

    #[test]
    fn oracle_native_grounding_hits_target() {
        let p = page();
        let shot = p.screenshot_at(0);
        let mut rng = StdRng::seed_from_u64(1);
        let percept = perceive(&shot, &ModelProfile::oracle(), &mut rng);
        let out = native_ground(&ModelProfile::oracle(), &percept, "Invite member", &mut rng);
        let GroundingOutcome::Box(r) = out else {
            panic!("expected a box")
        };
        let target = p.get(p.find_by_name("invite").unwrap()).bounds;
        assert!(target.contains(r.center()), "{r:?} vs {target:?}");
    }

    #[test]
    fn gpt4_native_grounding_mostly_misses() {
        let p = page();
        let shot = p.screenshot_at(0);
        let target = p.get(p.find_by_name("invite").unwrap()).bounds;
        let profile = ModelProfile::gpt4v();
        let mut hits = 0;
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let percept = perceive(&shot, &profile, &mut rng);
            if let GroundingOutcome::Box(r) =
                native_ground(&profile, &percept, "Invite member", &mut rng)
            {
                if target.contains(r.center()) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits < 30,
            "GPT-4 raw grounding should mostly miss: {hits}/100"
        );
    }

    #[test]
    fn cogagent_native_beats_gpt4() {
        let p = page();
        let shot = p.screenshot_at(0);
        let target = p.get(p.find_by_name("invite").unwrap()).bounds;
        let hits = |profile: &ModelProfile| {
            let mut h = 0;
            for seed in 0..100 {
                let mut rng = StdRng::seed_from_u64(seed);
                let percept = perceive(&shot, profile, &mut rng);
                if let GroundingOutcome::Box(r) =
                    native_ground(profile, &percept, "Invite member", &mut rng)
                {
                    if target.contains(r.center()) {
                        h += 1;
                    }
                }
            }
            h
        };
        let cog = hits(&ModelProfile::cogagent_18b());
        let gpt = hits(&ModelProfile::gpt4v());
        assert!(cog > gpt + 20, "CogAgent {cog} vs GPT-4 {gpt}");
    }

    #[test]
    fn mark_selection_picks_labeled_target() {
        let ms = marks();
        let mut rng = StdRng::seed_from_u64(2);
        let out = select_mark(
            &ModelProfile::oracle(),
            &ms,
            "the 'Invite member' button",
            &mut rng,
        );
        let GroundingOutcome::Mark(l) = out else {
            panic!("expected a mark")
        };
        let chosen = ms.iter().find(|m| m.label == l).unwrap();
        assert_eq!(chosen.text, "Invite member");
    }

    #[test]
    fn unlabeled_icon_forces_guess() {
        let ms = marks();
        // The gear icon has no visible text; HTML marks do carry aria text
        // for it, so build detector-style marks with empty icon text.
        let mut ms2 = ms.clone();
        for m in &mut ms2 {
            if m.hint == "svg" {
                m.text.clear();
            }
        }
        let profile = ModelProfile::gpt4v();
        let mut correct = 0;
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            if let GroundingOutcome::Mark(l) =
                select_mark(&profile, &ms2, "the settings gear icon", &mut rng)
            {
                if ms2.iter().find(|m| m.label == l).map(|m| m.hint.as_str()) == Some("svg") {
                    correct += 1;
                }
            }
        }
        assert!(
            correct < 40,
            "textless icons should often be mis-selected: {correct}/60"
        );
    }

    #[test]
    fn role_mismatch_penalty_applies() {
        let ms = vec![
            Mark {
                label: 1,
                rect: Rect::new(0, 0, 30, 30),
                text: "Profile".into(),
                hint: "svg".into(),
            },
            Mark {
                label: 2,
                rect: Rect::new(100, 0, 80, 30),
                text: "Profile page".into(),
                hint: "button".into(),
            },
        ];
        let scored = score_marks("the Profile button", &ms);
        let s_svg = scored.iter().find(|(l, _)| *l == 1).unwrap().1;
        let s_btn = scored.iter().find(|(l, _)| *l == 2).unwrap().1;
        assert!(
            s_btn > s_svg,
            "tag mismatch must penalize: {s_svg} vs {s_btn}"
        );
    }

    #[test]
    fn empty_marks_abstain() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            select_mark(&ModelProfile::gpt4v(), &[], "anything", &mut rng),
            GroundingOutcome::Abstain
        );
    }

    #[test]
    fn click_point_resolution() {
        let ms = marks();
        let out = GroundingOutcome::Mark(ms[0].label);
        assert_eq!(out.click_point(&ms), Some(ms[0].rect.center()));
        assert_eq!(GroundingOutcome::Abstain.click_point(&ms), None);
        let b = GroundingOutcome::Box(Rect::new(10, 10, 20, 20));
        assert_eq!(b.click_point(&[]), Some(Point::new(20, 20)));
    }
}

//! Lexical similarity for the simulated language head.
//!
//! The simulated FM "understands" a description like *"the Invite member
//! button"* by comparing its tokens with the text it perceives on screen.
//! This is deliberately shallow — token overlap with light normalization —
//! because the failure modes the paper documents (two buttons with the same
//! label, an icon with no label at all) survive any amount of lexical
//! cleverness.

/// Lowercase alphanumeric tokens.
pub fn tokens(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Dice-style overlap between token bags in [0, 1].
pub fn overlap(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut remaining: Vec<&String> = tb.iter().collect();
    let mut hits = 0usize;
    for t in &ta {
        if let Some(pos) = remaining.iter().position(|r| *r == t) {
            remaining.swap_remove(pos);
            hits += 1;
        }
    }
    2.0 * hits as f64 / (ta.len() + tb.len()) as f64
}

/// Crude suffix-stripping stem ("saved"/"saving"/"saves" → "sav"), enough
/// for confirmation-text ↔ button-label agreement.
pub fn stem(token: &str) -> String {
    let t = token.to_lowercase();
    for suffix in ["ing", "ed", "es", "s", "e"] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            if stripped.len() >= 3 {
                return stripped.to_string();
            }
        }
    }
    t
}

/// Dice overlap over stemmed tokens ("You saved the product" ↔ "Save").
pub fn stem_overlap(a: &str, b: &str) -> f64 {
    let ta: Vec<String> = tokens(a).iter().map(|t| stem(t)).collect();
    let tb: Vec<String> = tokens(b).iter().map(|t| stem(t)).collect();
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut remaining: Vec<&String> = tb.iter().collect();
    let mut hits = 0usize;
    for t in &ta {
        if let Some(pos) = remaining.iter().position(|r| *r == t) {
            remaining.swap_remove(pos);
            hits += 1;
        }
    }
    2.0 * hits as f64 / (ta.len() + tb.len()) as f64
}

/// Whether `needle`'s tokens all appear in `hay`.
pub fn contains_all(hay: &str, needle: &str) -> bool {
    let hay_tokens = tokens(hay);
    tokens(needle).iter().all(|t| hay_tokens.contains(t))
}

/// Levenshtein distance (for OCR-noise-tolerant comparisons).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Similarity robust to a few corrupted characters: max of token overlap
/// and normalized edit similarity.
pub fn fuzzy_similarity(a: &str, b: &str) -> f64 {
    let o = overlap(a, b);
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    let e = 1.0 - edit_distance(&a.to_lowercase(), &b.to_lowercase()) as f64 / max_len as f64;
    o.max(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_basics() {
        assert_eq!(overlap("Invite member", "Invite member"), 1.0);
        assert!(overlap("Invite member", "the Invite member button") > 0.5);
        assert_eq!(overlap("", "x"), 0.0);
        assert!(overlap("Delete project", "New issue") < 0.1);
    }

    #[test]
    fn contains_all_tokens() {
        assert!(contains_all(
            "Click the 'Save changes' button",
            "save changes"
        ));
        assert!(!contains_all("Click Save", "save changes"));
    }

    #[test]
    fn edit_distance_known_values() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
    }

    #[test]
    fn fuzzy_tolerates_ocr_noise() {
        // 'Settings' OCR'd as 'Setting5'.
        assert!(fuzzy_similarity("Settings", "Setting5") > 0.8);
        assert!(fuzzy_similarity("Settings", "Dashboard") < 0.5);
    }

    #[test]
    fn fuzzy_of_empty_is_one() {
        assert_eq!(fuzzy_similarity("", ""), 1.0);
    }
}

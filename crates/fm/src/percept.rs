//! The model's internal scene parse.
//!
//! When a screenshot enters the context window, the model's vision tower
//! produces an internal representation of "what is on screen". We model it
//! as a list of [`PerceivedElement`]s — geometry, coarse visual class,
//! OCR'd text — with profile-conditioned misses, jitter, and reading noise.
//! Everything downstream (grounding, action suggestion, validation) reasons
//! over the percept, never over the ground-truth page.

use rand::Rng;
use serde::{Deserialize, Serialize};

use eclair_gui::{Rect, Screenshot, VisualClass};
use eclair_vision::ocr::{read_item, Acuity};

use crate::profile::ModelProfile;

/// One element as the model perceives it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceivedElement {
    /// Where the model believes the element is (viewport coords, jittered).
    pub rect: Rect,
    /// Visual class (as rendered; the model cannot see HTML tags).
    pub visual: VisualClass,
    /// Text as read by the model (OCR noise applied).
    pub text: String,
    /// Whether the element renders grayed out (disabled *look*).
    pub grayed: bool,
    /// Emphasized rendering: bold headings, primary buttons, *checked*
    /// check/radio glyphs — all visually distinct states.
    pub emphasis: bool,
    /// Index of the source paint item (oracle-only; graders use it).
    pub source_index: usize,
}

impl PerceivedElement {
    /// Whether the element looks interactive (what a model infers from
    /// visual affordances alone).
    pub fn looks_interactive(&self) -> bool {
        matches!(
            self.visual,
            VisualClass::BoxButton
                | VisualClass::TextLink
                | VisualClass::InputBox
                | VisualClass::CheckGlyph
                | VisualClass::RadioGlyph
                | VisualClass::IconGlyph
        )
    }
}

/// The model's parse of one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenePercept {
    /// URL read from the browser chrome (models can read this reliably).
    pub url: String,
    /// Perceived elements, paint order preserved.
    pub elements: Vec<PerceivedElement>,
    /// Whether a caret bar was visible in this frame (focus is otherwise
    /// unobservable — the §4.3.1 integrity-constraint bottleneck).
    pub caret_seen: bool,
    /// Whether a modal-looking panel overlays the page.
    pub modal_seen: bool,
}

impl ScenePercept {
    /// Elements that look interactive.
    pub fn interactive(&self) -> impl Iterator<Item = &PerceivedElement> {
        self.elements.iter().filter(|e| e.looks_interactive())
    }

    /// All perceived text joined (for goal checks on confirmation screens).
    pub fn full_text(&self) -> String {
        self.elements
            .iter()
            .filter(|e| !e.text.is_empty())
            .map(|e| e.text.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Best-matching element for a text description (fuzzy), if any scores
    /// above `min_sim`.
    pub fn best_match(&self, description: &str, min_sim: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.elements.iter().enumerate() {
            if e.text.is_empty() {
                continue;
            }
            let s = crate::text::fuzzy_similarity(&e.text, description);
            if s >= min_sim && best.map(|(_, bs)| s > bs).unwrap_or(true) {
                best = Some((i, s));
            }
        }
        best
    }
}

/// Run the vision tower over a screenshot.
pub fn perceive<R: Rng>(shot: &Screenshot, profile: &ModelProfile, rng: &mut R) -> ScenePercept {
    assert!(
        profile.multimodal,
        "text-only model '{}' cannot perceive screenshots",
        profile.name
    );
    let acuity = Acuity::new(profile.ocr_acuity);
    let mut elements = Vec::with_capacity(shot.items.len());
    let mut caret_seen = false;
    let mut modal_seen = false;
    for (idx, item) in shot.items.iter().enumerate() {
        match item.visual {
            VisualClass::CaretBar => {
                caret_seen = true;
                continue;
            }
            VisualClass::PanelEdge
                // A wide text-free panel edge reads as a modal. Only
                // hairline dividers are excluded by height — short dialogs
                // (a single line plus a button) are still dialogs.
                if item.rect.w >= 300 && item.rect.h > 12 && item.text.is_empty() => {
                    modal_seen = true;
                }
            _ => {}
        }
        let recall = profile.percept_recall(item.rect.size_bucket());
        if !rng.gen_bool(recall) {
            continue; // the model simply does not register this element
        }
        let jitter = profile.percept_jitter_px;
        let rect = if jitter > 0 {
            Rect {
                x: item.rect.x + rng.gen_range(-jitter..=jitter),
                y: item.rect.y + rng.gen_range(-jitter..=jitter),
                w: (item.rect.w as i32 + rng.gen_range(-jitter..=jitter)).max(4) as u32,
                h: (item.rect.h as i32 + rng.gen_range(-jitter..=jitter)).max(4) as u32,
            }
        } else {
            item.rect
        };
        let text = if item.visual == VisualClass::IconGlyph {
            // Glyph identity, not text: recognized only by GUI-literate
            // models (CogAgent reads a gear as "settings"; GPT-4 usually
            // sees an unlabeled pictograph).
            if rng.gen_bool(profile.icon_literacy) {
                item.text.to_string()
            } else {
                String::new()
            }
        } else {
            read_item(item, acuity, rng)
        };
        elements.push(PerceivedElement {
            rect,
            visual: item.visual,
            text,
            grayed: item.grayed,
            emphasis: item.emphasis,
            source_index: idx,
        });
    }
    ScenePercept {
        url: shot.url.clone(),
        elements,
        caret_seen,
        modal_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::PageBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shot() -> Screenshot {
        let mut b = PageBuilder::new("p", "/p");
        b.heading(1, "Inbox");
        b.button("compose", "Compose message");
        b.icon_button("bell", "Notifications");
        b.text_input("search", "Search", "find mail");
        b.finish().screenshot_at(0)
    }

    #[test]
    fn oracle_percept_is_lossless() {
        let s = shot();
        let mut rng = StdRng::seed_from_u64(1);
        let p = perceive(&s, &ModelProfile::oracle(), &mut rng);
        assert_eq!(p.elements.len(), s.items.len());
        assert!(p.full_text().contains("Compose message"));
        assert!(!p.caret_seen);
    }

    #[test]
    fn percept_loses_small_elements_sometimes() {
        let s = shot();
        let mut profile = ModelProfile::gpt4v();
        profile.percept_recall_small = 0.3;
        let mut missed = 0;
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = perceive(&s, &profile, &mut rng);
            if !p
                .elements
                .iter()
                .any(|e| e.visual == VisualClass::IconGlyph)
            {
                missed += 1;
            }
        }
        assert!(missed > 20, "icon should often vanish: {missed}/60");
    }

    #[test]
    fn best_match_finds_button() {
        let s = shot();
        let mut rng = StdRng::seed_from_u64(2);
        let p = perceive(&s, &ModelProfile::oracle(), &mut rng);
        let (idx, sim) = p.best_match("the Compose message button", 0.3).unwrap();
        assert!(p.elements[idx].text.contains("Compose"));
        assert!(sim > 0.5);
        assert!(p.best_match("nonexistent widget", 0.6).is_none());
    }

    #[test]
    #[should_panic(expected = "cannot perceive")]
    fn text_only_model_panics_on_images() {
        let s = shot();
        let mut rng = StdRng::seed_from_u64(3);
        perceive(&s, &ModelProfile::gpt4_text(), &mut rng);
    }

    #[test]
    fn caret_detection() {
        use eclair_gui::{PaintItem, Rect};
        let mut s = shot();
        s.items.push(PaintItem {
            rect: Rect::new(100, 100, 2, 20),
            visual: VisualClass::CaretBar,
            text: eclair_gui::Sym::EMPTY,
            emphasis: false,
            grayed: false,
        });
        let mut rng = StdRng::seed_from_u64(4);
        let p = perceive(&s, &ModelProfile::oracle(), &mut rng);
        assert!(p.caret_seen);
    }

    #[test]
    fn deterministic_under_seed() {
        let s = shot();
        let a = perceive(&s, &ModelProfile::gpt4v(), &mut StdRng::seed_from_u64(9));
        let b = perceive(&s, &ModelProfile::gpt4v(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

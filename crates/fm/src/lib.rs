//! # eclair-fm
//!
//! A *simulated* multimodal foundation model — the substitution this
//! reproduction makes for GPT-4V and CogAgent (see DESIGN.md §1).
//!
//! The simulation is behavioural, not linguistic: instead of generating
//! free text, the model exposes the primitive capabilities the ECLAIR
//! pipeline composes, each with a mechanistic error model conditioned on a
//! per-model [`profile::ModelProfile`]:
//!
//! * [`percept`] — parsing a screenshot into perceived elements through a
//!   lossy vision tower (size-dependent recall, box jitter, OCR noise);
//! * [`ground`] — mapping a natural-language element description to pixels,
//!   natively (raw bbox emission) or via set-of-marks selection — the two
//!   regimes Table 3 compares;
//! * [`sampling`] — temperature, self-consistency ensembling, and
//!   confidence elicitation (the §5 reliability techniques);
//! * [`prompt`] / [`tokens`] — prompt assembly and token/cost accounting so
//!   experiments can report the price of FM-driven automation;
//! * [`model`] — the [`model::FmModel`] handle tying a profile to a seeded
//!   RNG and a token meter;
//! * [`text`] — the lightweight lexical-similarity machinery the simulated
//!   "language head" uses to compare descriptions with on-screen text.
//!
//! Determinism: an `FmModel` seeded identically produces identical
//! behaviour; "temperature 0" disables *sampling* noise but keeps
//! *capability* noise (a model that cannot localize small icons does not
//! become able to at temperature 0 — matching the paper's observation that
//! greedy decoding alone does not fix grounding).

pub mod ground;
pub mod model;
pub mod percept;
pub mod profile;
pub mod prompt;
pub mod sampling;
pub mod text;
pub mod tokens;

pub use ground::GroundingOutcome;
pub use model::{shared_percept_cache, FmModel, PerceptKey, SharedPerceptCache};
pub use percept::{PerceivedElement, ScenePercept};
pub use profile::{FmProfile, ModelProfile};
pub use prompt::{Part, Prompt};
pub use tokens::TokenMeter;

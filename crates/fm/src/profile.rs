//! Model profiles: the capability parameters distinguishing the models the
//! paper evaluates.
//!
//! Parameters are calibrated once, here, against the paper's published
//! operating points (see each preset's doc comment); every experiment then
//! *derives* its numbers from these mechanisms. EXPERIMENTS.md records how
//! close the derived numbers land.

use serde::{Deserialize, Serialize};

/// Capability parameters of one (simulated) foundation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name.
    pub name: String,
    /// Whether the model accepts images at all (text-only LLMs cannot run
    /// the vision experiments — the limitation §2.1 notes for early
    /// LLM-agent work).
    pub multimodal: bool,

    // --- vision tower ---
    /// OCR quality in \[0,1\] (see `eclair_vision::ocr::Acuity`).
    pub ocr_acuity: f64,
    /// Probability of perceiving a small (<1.6k px²) element at all.
    pub percept_recall_small: f64,
    /// Probability of perceiving a medium element.
    pub percept_recall_medium: f64,
    /// Probability of perceiving a large element.
    pub percept_recall_large: f64,
    /// Pixel jitter of the model's *internal* location estimates.
    pub percept_jitter_px: i32,

    // --- native grounding (emitting a bbox directly) ---
    /// Std-dev (px) of horizontal error when emitting a bbox natively.
    pub native_sigma_x: f64,
    /// Std-dev (px) of vertical error when emitting a bbox natively.
    pub native_sigma_y: f64,
    /// Probability of a gross grounding error (locking onto an entirely
    /// different region).
    pub native_gross_error: f64,

    // --- set-of-marks selection ---
    /// Probability of slipping to the runner-up candidate even when the
    /// best-scoring mark is correct (attention/selection noise).
    pub mark_selection_noise: f64,

    // --- language / reasoning ---
    /// Probability of hallucinating a plausible-but-ungrounded step when
    /// generating from priors alone.
    pub hallucination_rate: f64,
    /// Skill at decomposing a high-level step into primitive actions, in
    /// \[0,1\] (paper §1: ECLAIR "has difficulty decomposing higher-level
    /// steps into discrete actions").
    pub decomposition_skill: f64,
    /// Noise in binary judgments: probability of flipping a verdict whose
    /// evidence is borderline.
    pub judgment_noise: f64,
    /// Probability per step of losing the place while following a written
    /// procedure (doubled when neighbouring steps look alike).
    pub tracking_noise: f64,
    /// Probability of recognizing a common icon glyph's meaning (gear →
    /// settings). GUI-trained models read icons; generalists mostly don't.
    pub icon_literacy: f64,
}

/// A named preset profile — the `Copy`/`Serialize` handle fleet schedulers
/// pass around instead of a full [`ModelProfile`]. A `RunSpec` carries one
/// of these plus a seed; the worker thread expands it into a fresh
/// [`crate::FmModel`] at run start, so no model state is ever shared
/// between concurrent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FmProfile {
    /// [`ModelProfile::gpt4v`].
    Gpt4V,
    /// [`ModelProfile::gpt4_text`].
    Gpt4Text,
    /// [`ModelProfile::cogagent_18b`].
    CogAgent18b,
    /// [`ModelProfile::oracle`].
    Oracle,
}

impl FmProfile {
    /// Expand into the full capability profile.
    pub fn to_profile(self) -> ModelProfile {
        match self {
            FmProfile::Gpt4V => ModelProfile::gpt4v(),
            FmProfile::Gpt4Text => ModelProfile::gpt4_text(),
            FmProfile::CogAgent18b => ModelProfile::cogagent_18b(),
            FmProfile::Oracle => ModelProfile::oracle(),
        }
    }

    /// Instantiate a fresh model from this preset and a seed. Construction
    /// is cheap (a profile clone plus an RNG seed), so per-run
    /// instantiation is the norm, not an optimization target.
    pub fn instantiate(self, seed: u64) -> crate::FmModel {
        crate::FmModel::new(self.to_profile(), seed)
    }

    /// Display name (matches the expanded profile's name).
    pub fn name(self) -> &'static str {
        match self {
            FmProfile::Gpt4V => "GPT-4",
            FmProfile::Gpt4Text => "GPT-4 (text-only)",
            FmProfile::CogAgent18b => "CogAgent",
            FmProfile::Oracle => "Oracle",
        }
    }
}

impl ModelProfile {
    /// GPT-4 with vision, as evaluated throughout the paper: strong
    /// language/reasoning, good perception, *poor native localization*
    /// (Table 3 row "GPT-4 / –": 0.05–0.07 overall).
    pub fn gpt4v() -> Self {
        Self {
            name: "GPT-4".into(),
            multimodal: true,
            ocr_acuity: 0.92,
            percept_recall_small: 0.97,
            percept_recall_medium: 0.99,
            percept_recall_large: 0.995,
            percept_jitter_px: 4,
            // Large positional uncertainty: the model can describe *what*
            // but not *where*.
            native_sigma_x: 170.0,
            native_sigma_y: 110.0,
            native_gross_error: 0.35,
            mark_selection_noise: 0.17,
            hallucination_rate: 0.26,
            decomposition_skill: 0.82,
            judgment_noise: 0.08,
            tracking_noise: 0.09,
            icon_literacy: 0.3,
        }
    }

    /// CogAgent-18B: a smaller model purpose-built for GUI grounding
    /// (Table 3: 0.70–0.71 overall, notably better on small elements), with
    /// weaker general reasoning.
    pub fn cogagent_18b() -> Self {
        Self {
            name: "CogAgent".into(),
            multimodal: true,
            ocr_acuity: 0.96,
            percept_recall_small: 0.98,
            percept_recall_medium: 0.99,
            percept_recall_large: 0.995,
            percept_jitter_px: 2,
            native_sigma_x: 6.0,
            native_sigma_y: 5.0,
            native_gross_error: 0.06,
            mark_selection_noise: 0.05,
            hallucination_rate: 0.35,
            decomposition_skill: 0.6,
            judgment_noise: 0.14,
            tracking_noise: 0.12,
            icon_literacy: 0.85,
        }
    }

    /// Text-only GPT-4: included as the §2.1 baseline class that "can only
    /// understand text" and must read scraped HTML.
    pub fn gpt4_text() -> Self {
        Self {
            multimodal: false,
            name: "GPT-4 (text-only)".into(),
            ..Self::gpt4v()
        }
    }

    /// An idealized oracle model: perfect perception and grounding. Used in
    /// ablation benches to separate perception error from decision error.
    pub fn oracle() -> Self {
        Self {
            name: "Oracle".into(),
            multimodal: true,
            ocr_acuity: 1.0,
            percept_recall_small: 1.0,
            percept_recall_medium: 1.0,
            percept_recall_large: 1.0,
            percept_jitter_px: 0,
            native_sigma_x: 0.0,
            native_sigma_y: 0.0,
            native_gross_error: 0.0,
            mark_selection_noise: 0.0,
            hallucination_rate: 0.0,
            decomposition_skill: 1.0,
            judgment_noise: 0.0,
            tracking_noise: 0.0,
            icon_literacy: 1.0,
        }
    }

    /// Perception recall for a size bucket.
    pub fn percept_recall(&self, bucket: eclair_gui::SizeBucket) -> f64 {
        match bucket {
            eclair_gui::SizeBucket::Small => self.percept_recall_small,
            eclair_gui::SizeBucket::Medium => self.percept_recall_medium,
            eclair_gui::SizeBucket::Large => self.percept_recall_large,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_as_the_paper_reports() {
        let gpt4 = ModelProfile::gpt4v();
        let cog = ModelProfile::cogagent_18b();
        // CogAgent localizes natively far better...
        assert!(cog.native_sigma_x < gpt4.native_sigma_x / 5.0);
        assert!(cog.native_gross_error < gpt4.native_gross_error);
        // ...and sees small elements better...
        assert!(cog.percept_recall_small > gpt4.percept_recall_small);
        // ...but reasons/decomposes worse (it needs GPT-4 for planning).
        assert!(cog.decomposition_skill < gpt4.decomposition_skill);
    }

    #[test]
    fn oracle_is_noise_free() {
        let o = ModelProfile::oracle();
        assert_eq!(o.native_gross_error, 0.0);
        assert_eq!(o.hallucination_rate, 0.0);
        assert_eq!(o.percept_recall(eclair_gui::SizeBucket::Small), 1.0);
    }

    #[test]
    fn text_only_flag() {
        assert!(!ModelProfile::gpt4_text().multimodal);
        assert!(ModelProfile::gpt4v().multimodal);
    }

    #[test]
    fn presets_expand_to_matching_profiles() {
        for p in [
            FmProfile::Gpt4V,
            FmProfile::Gpt4Text,
            FmProfile::CogAgent18b,
            FmProfile::Oracle,
        ] {
            assert_eq!(p.to_profile().name, p.name());
            let m = p.instantiate(7);
            assert_eq!(m.profile().name, p.name());
        }
    }
}

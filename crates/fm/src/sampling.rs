//! Sampling-layer reliability techniques from the paper's Discussion (§5):
//! temperature-0 determinism, repeated-query self-consistency ensembling
//! ("repeatedly querying and ensembling predictions"), and confidence
//! elicitation "to surface cases where intervention is necessary".

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sampling configuration for one call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sampling {
    /// 0.0 = greedy; higher adds decision noise on borderline choices.
    pub temperature: f64,
    /// Number of samples to ensemble (1 = single shot).
    pub self_consistency: usize,
}

impl Default for Sampling {
    fn default() -> Self {
        Self {
            temperature: 0.0,
            self_consistency: 1,
        }
    }
}

impl Sampling {
    /// Greedy single sample.
    pub fn greedy() -> Self {
        Self::default()
    }

    /// Majority vote over `n` samples at `temperature`.
    pub fn vote(n: usize, temperature: f64) -> Self {
        Self {
            temperature,
            self_consistency: n.max(1),
        }
    }
}

/// A binary judgment with elicited confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Judgment {
    /// The verdict.
    pub verdict: bool,
    /// Elicited confidence in [0.5, 1.0] (how sure the model claims to be).
    pub confidence: f64,
}

/// Turn continuous evidence into a noisy binary verdict.
///
/// `evidence` ∈ [-1, 1]: the signed strength of support the model's
/// percepts give the proposition (+1 = clearly true, −1 = clearly false,
/// 0 = unobservable). `noise` is the profile's judgment noise;
/// `temperature` adds further flip probability on borderline evidence.
pub fn judge<R: Rng>(evidence: f64, noise: f64, temperature: f64, rng: &mut R) -> Judgment {
    let evidence = evidence.clamp(-1.0, 1.0);
    // Borderline evidence flips easily; strong evidence rarely. At zero
    // evidence the verdict approaches a genuine coin flip — a model with
    // nothing to go on is guessing, not defaulting.
    let borderline = 1.0 - evidence.abs();
    let flip_p =
        (0.5 * borderline.powi(4) + noise * borderline + 0.5 * temperature * borderline).min(0.49);
    let mut verdict = evidence >= 0.0;
    if rng.gen_bool(flip_p) {
        verdict = !verdict;
    }
    // Confidence tracks evidence strength, deliberately over-confident on
    // weak evidence (models are poorly calibrated out of the box).
    let confidence = 0.55 + 0.45 * evidence.abs().powf(0.5);
    Judgment {
        verdict,
        confidence,
    }
}

/// Self-consistency: sample a judgment `n` times and majority-vote,
/// averaging confidence. With `n = 1` this is a single call.
pub fn judge_ensemble<R: Rng>(
    evidence: f64,
    noise: f64,
    sampling: Sampling,
    rng: &mut R,
) -> Judgment {
    let n = sampling.self_consistency.max(1);
    let mut yes = 0usize;
    let mut conf_sum = 0.0;
    for _ in 0..n {
        let j = judge(evidence, noise, sampling.temperature, rng);
        if j.verdict {
            yes += 1;
        }
        conf_sum += j.confidence;
    }
    Judgment {
        verdict: yes * 2 > n || (yes * 2 == n && evidence >= 0.0),
        confidence: conf_sum / n as f64,
    }
}

/// Softmax-with-temperature choice among scored options; temperature 0 is
/// argmax (deterministic, ties to the lowest index).
pub fn choose<R: Rng>(scores: &[f64], temperature: f64, rng: &mut R) -> Option<usize> {
    if scores.is_empty() {
        return None;
    }
    if temperature <= 0.0 {
        let mut best = 0usize;
        for (i, s) in scores.iter().enumerate() {
            if *s > scores[best] {
                best = i;
            }
        }
        return Some(best);
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores
        .iter()
        .map(|s| ((s - max) / temperature).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return Some(i);
        }
        pick -= w;
    }
    Some(scores.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strong_evidence_is_stable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut wrong = 0;
        for _ in 0..300 {
            if !judge(0.95, 0.1, 0.0, &mut rng).verdict {
                wrong += 1;
            }
        }
        assert!(wrong <= 6, "strong evidence rarely flips: {wrong}");
    }

    #[test]
    fn zero_evidence_is_a_coin_flip() {
        // With nothing to go on the model guesses: verdicts approach 50/50.
        let mut rng = StdRng::seed_from_u64(2);
        let mut falses = 0;
        for _ in 0..1000 {
            if !judge(0.0, 0.3, 0.0, &mut rng).verdict {
                falses += 1;
            }
        }
        assert!(
            (380..=620).contains(&falses),
            "zero evidence ≈ coin flip: {falses}/1000"
        );
    }

    #[test]
    fn ensemble_reduces_variance() {
        let count_wrong = |sampling: Sampling| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut wrong = 0;
            for _ in 0..400 {
                if !judge_ensemble(0.4, 0.3, sampling, &mut rng).verdict {
                    wrong += 1;
                }
            }
            wrong
        };
        let single = count_wrong(Sampling::greedy());
        let voted = count_wrong(Sampling::vote(7, 0.0));
        assert!(
            voted < single,
            "7-vote ensemble must reduce errors: {voted} vs {single}"
        );
    }

    #[test]
    fn confidence_tracks_evidence() {
        let mut rng = StdRng::seed_from_u64(4);
        let strong = judge(0.9, 0.1, 0.0, &mut rng).confidence;
        let weak = judge(0.1, 0.1, 0.0, &mut rng).confidence;
        assert!(strong > weak);
        assert!((0.5..=1.0).contains(&strong));
        assert!((0.5..=1.0).contains(&weak));
    }

    #[test]
    fn choose_greedy_is_argmax() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(choose(&[0.1, 0.9, 0.5], 0.0, &mut rng), Some(1));
        assert_eq!(choose(&[], 0.0, &mut rng), None);
    }

    #[test]
    fn choose_hot_explores() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut picked_other = false;
        for _ in 0..100 {
            if choose(&[0.5, 0.6], 2.0, &mut rng) == Some(0) {
                picked_other = true;
                break;
            }
        }
        assert!(picked_other, "high temperature explores the runner-up");
    }
}

//! # eclair
//!
//! Umbrella crate for the ECLAIR reproduction (Wornow et al., *Automating
//! the Enterprise with Foundation Models*, VLDB 2024): re-exports every
//! subsystem crate under one roof so examples and downstream users can
//! depend on a single package.
//!
//! ```
//! use eclair::prelude::*;
//!
//! // Pick a workflow, build the agent, automate it end to end.
//! let task = eclair::sites::all_tasks().remove(2);
//! let mut agent = Eclair::new(EclairConfig::default());
//! let report = agent.automate(&task);
//! assert!(!report.sop_text.is_empty());
//! ```
//!
//! The subsystem crates, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`metrics`] | classification metrics, bootstrap CIs, table rendering |
//! | [`gui`] | the simulated GUI substrate (widgets, layout, sessions, screenshots) |
//! | [`vision`] | recordings, key frames, OCR, detection, set-of-marks |
//! | [`workflow`] | SOPs, actions, traces, integrity constraints, matching |
//! | [`fm`] | the simulated multimodal foundation model |
//! | [`sites`] | GitLab / Magento / ERP / payer-portal apps + the 30 tasks |
//! | [`rpa`] | the rule-based RPA baseline, drift study, economics |
//! | [`core`] | ECLAIR itself: Demonstrate / Execute / Validate + experiments |
//! | [`fleet`] | concurrent multi-workflow scheduler (retries, budgets, backpressure) |
//! | [`hybrid`] | trace→script compiler, drift-detecting bot executor, recompiler |
//! | [`trace`] | deterministic spans, virtual clock, JSONL flight records |

pub use eclair_chaos as chaos;
pub use eclair_core as core;
pub use eclair_corpus as corpus;
pub use eclair_fleet as fleet;
pub use eclair_fm as fm;
pub use eclair_gui as gui;
pub use eclair_hybrid as hybrid;
pub use eclair_metrics as metrics;
pub use eclair_rpa as rpa;
pub use eclair_shared as shared;
pub use eclair_sites as sites;
pub use eclair_trace as trace;
pub use eclair_vision as vision;
pub use eclair_workflow as workflow;

/// The handful of types most programs start from.
pub mod prelude {
    pub use eclair_core::agent::{Eclair, EclairConfig, WorkflowReport};
    pub use eclair_core::demonstrate::EvidenceLevel;
    pub use eclair_core::execute::{ExecConfig, GroundingStrategy};
    pub use eclair_corpus::corpus_tasks;
    pub use eclair_fleet::{Fleet, FleetConfig, RetryPolicy, RunSpec};
    pub use eclair_fm::{FmModel, FmProfile, ModelProfile};
    pub use eclair_hybrid::{HybridPolicy, HybridScript};
    pub use eclair_sites::{Site, TaskSpec};
    pub use eclair_workflow::{Action, Sop, TargetRef};
}

/// Helper used by the hospital example: run a task on a (possibly
/// drifted) themed session with a post-run human-escalation gate.
pub mod hitl_run {
    use eclair_core::execute::executor::{run_on_session, ExecConfig, RunResult};
    use eclair_fm::{FmModel, ModelProfile};
    use eclair_gui::Theme;
    use eclair_sites::TaskSpec;

    /// Execute `task` against a themed session. Returns the run result and
    /// whether the outcome triggered a transfer of control to a human
    /// (here: a coverage-lapse result, which staff must review before any
    /// downstream claim action — the paper's §5 interrupt pattern).
    pub fn run_with_gate(task: &TaskSpec, theme: &Theme, seed: u64) -> (RunResult, bool) {
        let mut model = FmModel::new(ModelProfile::gpt4v(), seed);
        let mut session = task.site.launch_with_theme(theme.clone());
        let cfg = ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
        let mut result = run_on_session(&mut model, &mut session, &task.intent, &cfg);
        result.success = task.success.evaluate(&session);
        let interrupted = session.screenshot().contains_text("NOT COVERED");
        (result, interrupted)
    }
}

//! Integration tests over the Demonstrate → Execute → Validate data flow:
//! recordings feed key frames feed SOP generation feed execution feed
//! validation, across crate boundaries.

use eclair::prelude::*;
use eclair_core::demonstrate::{generate_sop, record_gold_demo};
use eclair_core::execute::executor::{run_task, ExecConfig};
use eclair_core::validate::{check_completion, check_trajectory};
use eclair_vision::keyframes::{extract_key_frames, KeyFrameConfig};
use eclair_workflow::score::score_sop;

fn task(id: &str) -> TaskSpec {
    eclair::sites::all_tasks()
        .into_iter()
        .find(|t| t.id == id)
        .unwrap()
}

#[test]
fn recordings_have_aligned_frames_and_informative_logs() {
    for id in ["gitlab-01", "magento-06", "gitlab-12"] {
        let t = task(id);
        let rec = record_gold_demo(&t);
        assert_eq!(rec.frames.len(), rec.log.len() + 1, "{id}");
        // Most clicks resolve accessible target text.
        let clicks: Vec<_> = rec
            .log
            .iter()
            .filter(|e| matches!(e.event, eclair::gui::UserEvent::Click(_)))
            .collect();
        let with_text = clicks.iter().filter(|e| e.target_text.is_some()).count();
        assert!(
            with_text * 2 >= clicks.len(),
            "{id}: recorder resolves most click targets"
        );
        // The final frame reflects the completed workflow.
        let mut check = t.launch();
        for e in &rec.log {
            check.dispatch(e.event.clone());
        }
        assert!(t.success.evaluate(&check), "{id}");
    }
}

#[test]
fn key_frames_compress_recordings_substantially() {
    let t = task("gitlab-12"); // includes a Replace (backspace burst)
    let rec = record_gold_demo(&t);
    let kfs = extract_key_frames(&rec, KeyFrameConfig::default());
    assert!(
        kfs.len() < rec.frames.len() / 2,
        "key frames must compress the raw frame stream: {} of {}",
        kfs.len(),
        rec.frames.len()
    );
    // Ordered, unique, final state retained.
    for pair in kfs.windows(2) {
        assert!(pair[0].frame_index < pair[1].frame_index);
    }
    assert_eq!(kfs.last().unwrap().frame_index, rec.frames.len() - 1);
}

#[test]
fn generated_sop_executes_and_validates() {
    // The full loop on one task with the GPT-4 profile at a fixed seed.
    let t = task("magento-05");
    let rec = record_gold_demo(&t);
    let mut model = FmModel::new(ModelProfile::gpt4v(), 5);
    let sop = generate_sop(&mut model, &t.intent, Some(&rec), EvidenceLevel::WdKfAct);
    let score = score_sop(&sop, &t.gold_sop);
    assert!(score.f1() >= 0.6, "learned SOP resembles gold: {score:?}");

    let cfg = ExecConfig::with_sop(sop.clone()).budgeted(t.gold_trace.len());
    let mut exec_model = FmModel::new(ModelProfile::gpt4v(), 6);
    let result = run_task(&mut exec_model, &t, &cfg);
    assert!(result.success, "{:#?}", result.log);

    // Validators agree the demonstration completed and followed the SOP.
    let mut judge = FmModel::new(ModelProfile::gpt4v(), 7);
    assert!(check_completion(&mut judge, &rec, &t.intent).verdict);
    assert!(check_trajectory(&mut judge, &rec, &sop).verdict);
}

#[test]
fn evidence_levels_order_holds_on_a_sample() {
    let tasks: Vec<_> = eclair::sites::all_tasks().into_iter().take(6).collect();
    let mut f1s = [0.0f64; 3];
    for (ti, t) in tasks.iter().enumerate() {
        let rec = record_gold_demo(t);
        for (k, level) in EvidenceLevel::all().into_iter().enumerate() {
            let mut model = FmModel::new(ModelProfile::gpt4v(), 500 + ti as u64);
            let sop = generate_sop(&mut model, &t.intent, Some(&rec), level);
            f1s[k] += score_sop(&sop, &t.gold_sop).f1();
        }
    }
    assert!(
        f1s[2] >= f1s[1] && f1s[1] >= f1s[0] - 0.3,
        "evidence helps: {f1s:?}"
    );
}

#[test]
fn token_accounting_tracks_prompt_sizes() {
    use eclair::fm::{Part, Prompt};
    let t = task("gitlab-03");
    let session = t.launch();
    let shot = session.screenshot_at_phase(false);
    let prompt = Prompt::new("You are ECLAIR, an enterprise workflow agent.")
        .text(format!("Workflow: {}", t.intent))
        .text(t.gold_sop.format())
        .image(shot);
    assert!(prompt.tokens() > 100);
    assert_eq!(prompt.image_count(), 1);
    let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
    model.charge(&prompt, 80);
    assert_eq!(model.meter().calls, 1);
    assert!(matches!(prompt.parts[0], Part::Text(_)));
}

#[test]
fn rpa_and_eclair_disagree_under_drift_in_the_expected_direction() {
    use eclair::gui::theme::generate_drift;
    use eclair::gui::Theme;
    use eclair::rpa::script::{compile, AuthoringConfig};
    use eclair::rpa::RpaBot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let tasks: Vec<_> = eclair::sites::all_tasks().into_iter().take(8).collect();
    let mut rng = StdRng::seed_from_u64(7);
    // Build a heavily-drifted theme sampled from a representative page.
    let mut theme = Theme::pristine();
    let sample = tasks[0].launch();
    theme.extend(generate_drift(sample.page(), &mut rng, 8));

    let mut rpa_ok = 0;
    let mut eclair_ok = 0;
    for (i, t) in tasks.iter().enumerate() {
        let mut author = t.launch();
        let script = compile(
            &t.id,
            &mut author,
            &t.gold_trace.actions,
            AuthoringConfig::default(),
            &mut rng,
        );
        let mut rpa_session = t.site.launch_with_theme(theme.clone());
        if RpaBot.run(&mut rpa_session, &script).completed() && t.success.evaluate(&rpa_session) {
            rpa_ok += 1;
        }
        let mut model = FmModel::new(ModelProfile::gpt4v(), 800 + i as u64);
        let mut session = t.site.launch_with_theme(theme.clone());
        let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
        eclair_core::execute::executor::run_on_session(&mut model, &mut session, &t.intent, &cfg);
        if t.success.evaluate(&session) {
            eclair_ok += 1;
        }
    }
    assert!(
        eclair_ok >= rpa_ok,
        "under drift the FM agent should hold up at least as well: eclair {eclair_ok} vs rpa {rpa_ok}"
    );
}

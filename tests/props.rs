//! Property-based tests over the core data structures and invariants,
//! spanning geometry/layout, screenshots, matching, SOPs, selectors, and
//! metrics.

use eclair::gui::{Page, PageBuilder, Rect, SizeBucket};
use eclair::metrics::classification::BinaryConfusion;
use eclair::workflow::matcher::{step_similarity, token_f1};
use eclair::workflow::score::score_sop;
use eclair::workflow::Sop;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i32..1200, 0i32..2000, 1u32..600, 1u32..400).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9 ]{0,18}").expect("valid regex")
}

proptest! {
    // ------------------------------------------------------------ geometry

    #[test]
    fn rect_center_is_inside(r in arb_rect()) {
        prop_assert!(r.contains(r.center()));
    }

    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_is_contained(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.area() <= a.area());
            prop_assert!(i.area() <= b.area());
            prop_assert!(a.contains(i.center()) && b.contains(i.center()));
        }
    }

    #[test]
    fn size_buckets_are_monotone(w in 1u32..800, h in 1u32..400, grow in 1u32..4) {
        let small = Rect::new(0, 0, w, h);
        let big = Rect::new(0, 0, w * grow, h * grow);
        prop_assert!(small.size_bucket() <= big.size_bucket());
        let _ = SizeBucket::all();
    }

    // -------------------------------------------------------------- layout

    #[test]
    fn layout_never_overlaps_stacked_leaves(labels in proptest::collection::vec(arb_label(), 1..12)) {
        let mut b = PageBuilder::new("prop", "/prop");
        for (i, l) in labels.iter().enumerate() {
            if i % 2 == 0 {
                b.button(format!("b{i}"), l.clone());
            } else {
                b.text(l.clone());
            }
        }
        let p = b.finish();
        let leaves: Vec<Rect> = p
            .visible_iter()
            .filter(|w| !w.kind.is_container())
            .map(|w| w.bounds)
            .collect();
        for pair in leaves.windows(2) {
            prop_assert!(
                pair[1].y >= pair[0].bottom(),
                "stacked leaves must not overlap: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        for r in &leaves {
            prop_assert!(r.x >= 0 && r.right() <= 1280);
        }
    }

    #[test]
    fn hit_test_agrees_with_bounds(labels in proptest::collection::vec(arb_label(), 1..8)) {
        let mut b = PageBuilder::new("hit", "/hit");
        for (i, l) in labels.iter().enumerate() {
            b.button(format!("b{i}"), l.clone());
        }
        let p = b.finish();
        for w in p.visible_iter().filter(|w| w.kind.is_interactive()) {
            let hit = p.hit_test(w.bounds.center());
            prop_assert_eq!(hit, Some(w.id), "center of a button hits that button");
        }
    }

    #[test]
    fn screenshot_render_is_pure(seed_label in arb_label(), scroll in 0i32..200) {
        let mut b = PageBuilder::new("pure", "/pure");
        b.heading(1, seed_label.clone());
        for i in 0..30 {
            b.text(format!("{seed_label} row {i}"));
        }
        let p = b.finish();
        let s1 = p.screenshot_at(scroll);
        let s2 = p.screenshot_at(scroll);
        prop_assert_eq!(&s1, &s2);
        prop_assert!((s1.diff_fraction(&s2) - 0.0).abs() < 1e-12);
    }

    // ------------------------------------------------------------ matching

    #[test]
    fn step_similarity_symmetric_bounded(a in arb_label(), b in arb_label()) {
        let fwd = step_similarity(&a, &b);
        let bwd = step_similarity(&b, &a);
        prop_assert!((fwd - bwd).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&fwd));
    }

    #[test]
    fn token_f1_identity(tokens in proptest::collection::vec("[a-z]{1,8}", 0..8)) {
        let v: Vec<String> = tokens;
        if v.is_empty() {
            prop_assert_eq!(token_f1(&v, &v), 1.0);
        } else {
            prop_assert!((token_f1(&v, &v) - 1.0).abs() < 1e-12);
        }
    }

    // ---------------------------------------------------------------- SOPs

    #[test]
    fn sop_format_parse_round_trip(steps in proptest::collection::vec(arb_label(), 1..10)) {
        let sop = Sop::from_texts("Prop workflow", &steps.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let back = Sop::parse(&sop.format());
        prop_assert_eq!(back.len(), sop.len());
        for (a, b) in back.steps.iter().zip(&sop.steps) {
            prop_assert_eq!(a.text.trim(), b.text.trim());
            prop_assert_eq!(a.index, b.index);
        }
    }

    #[test]
    fn self_scored_sop_is_perfect(steps in proptest::collection::vec("[A-Za-z][A-Za-z0-9 ]{4,24}", 1..8)) {
        // Click-prefixed unique-ish steps score 1.0 against themselves.
        let texts: Vec<String> = steps
            .iter()
            .enumerate()
            .map(|(i, s)| format!("Click the '{s} {i}' button"))
            .collect();
        let sop = Sop::from_texts("t", &texts.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let score = score_sop(&sop, &sop);
        prop_assert_eq!(score.missing, 0);
        prop_assert_eq!(score.incorrect, 0);
        prop_assert!((score.precision - 1.0).abs() < 1e-12);
    }

    // ------------------------------------------------------------- metrics

    #[test]
    fn confusion_metrics_bounded(tp in 0u64..500, fp in 0u64..500, fn_ in 0u64..500, tn in 0u64..500) {
        let cm = BinaryConfusion::from_counts(tp, fp, fn_, tn);
        for v in [cm.precision(), cm.recall(), cm.f1(), cm.accuracy(), cm.balanced_accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        prop_assert_eq!(cm.total(), tp + fp + fn_ + tn);
        // F1 lies between min and max of precision and recall.
        let (p, r) = (cm.precision(), cm.recall());
        prop_assert!(cm.f1() <= p.max(r) + 1e-12);
        prop_assert!(cm.f1() + 1e-12 >= p.min(r) || cm.f1() == 0.0);
    }

    // -------------------------------------------------------- gui sessions

    #[test]
    fn typed_text_round_trips_through_session(input in "[a-zA-Z0-9 ]{1,24}") {
        use eclair::gui::{GuiApp, SemanticEvent, Session, UserEvent};
        struct One;
        impl GuiApp for One {
            fn name(&self) -> &str { "one" }
            fn url(&self) -> String { "/one".into() }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("one", "/one");
                b.form("f", |b| {
                    b.text_input("field", "Field", "");
                    b.button("go", "Go");
                });
                b.finish()
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool { false }
        }
        let mut s = Session::new(Box::new(One));
        let id = s.page().find_by_name("field").unwrap();
        let pt = s.page().get(id).bounds.center().offset(0, -s.scroll_y());
        s.dispatch(UserEvent::Click(pt));
        s.dispatch(UserEvent::Type(input.clone()));
        let id = s.page().find_by_name("field").unwrap();
        prop_assert_eq!(&s.page().get(id).value, &input);
        // And the pixels show it.
        prop_assert!(s.screenshot().contains_text(&input));
    }
}

// --------------------------------------------------------- recordings

proptest! {
    #[test]
    fn trace_corruptions_keep_alignment(cut in 0usize..12, i in 0usize..10, j in 0usize..10) {
        use eclair_core::demonstrate::record_gold_demo;
        let task = eclair::sites::all_tasks().remove(0);
        let rec = record_gold_demo(&task);
        let t = rec.truncated(cut);
        prop_assert_eq!(t.frames.len(), t.log.len() + 1);
        let n = rec.num_actions();
        let sw = rec.with_swapped(i.min(n - 1), j.min(n - 1));
        prop_assert_eq!(sw.frames.len(), sw.log.len() + 1);
        let del = rec.with_deleted(i.min(n - 1));
        prop_assert_eq!(del.frames.len(), del.log.len() + 1);
        for (idx, e) in del.log.iter().enumerate() {
            prop_assert_eq!(e.frame_index, idx, "indices rewritten after delete");
        }
    }

    #[test]
    fn key_frames_are_a_strictly_increasing_subsequence(task_idx in 0usize..30) {
        use eclair_core::demonstrate::record_gold_demo;
        use eclair_vision::keyframes::{extract_key_frames, KeyFrameConfig};
        let task = eclair::sites::all_tasks().remove(task_idx);
        let rec = record_gold_demo(&task);
        let kfs = extract_key_frames(&rec, KeyFrameConfig::default());
        prop_assert!(!kfs.is_empty());
        for pair in kfs.windows(2) {
            prop_assert!(pair[0].frame_index < pair[1].frame_index);
        }
        prop_assert!(kfs.last().unwrap().frame_index < rec.frames.len());
    }

    #[test]
    fn detector_is_deterministic_and_boxes_stay_near_items(seed in 0u64..50) {
        use eclair::vision::detector::YoloNasSim;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut b = PageBuilder::new("det", "/det");
        b.button("a", "Alpha action");
        b.link("b", "Beta link");
        b.text_input("c", "Gamma", "value");
        let shot = b.finish().screenshot_at(0);
        let det = YoloNasSim::default();
        let d1 = det.detect(&shot, &mut StdRng::seed_from_u64(seed));
        let d2 = det.detect(&shot, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&d1, &d2);
        for d in d1.iter().filter(|d| !d.spurious) {
            let best = shot.items.iter().map(|i| d.rect.iou(&i.rect)).fold(0.0f64, f64::max);
            prop_assert!(best > 0.2, "{:?}", d);
        }
    }

    #[test]
    fn theme_application_is_idempotent_for_relabels(to in "[A-Z][a-z]{2,10}") {
        use eclair::gui::{DriftOp, Theme};
        let mut b = PageBuilder::new("t", "/t");
        b.button("save", "Save");
        let mut p1 = b.finish();
        let theme = Theme::with_ops(vec![DriftOp::Relabel { from: "Save".into(), to: to.clone() }]);
        theme.apply(&mut p1);
        let relabeled = p1.find_by_label(&to, true);
        prop_assert!(relabeled.is_some());
        // Applying again is a no-op (the source label is gone).
        let before = p1.clone();
        theme.apply(&mut p1);
        prop_assert_eq!(p1.len(), before.len());
    }
}

//! Golden-trace snapshot corpus: canonical crucible scenarios whose full
//! fleet outcome and merged-trace digest are committed under
//! `tests/golden/`. Any behavioral drift in the executor, scheduler,
//! chaos layer, or trace pipeline shows up as a diff against these files.
//!
//! To intentionally re-baseline after a deliberate behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_corpus
//! ```

use eclair_crucible::{evaluate, run_scenario, Scenario};
use eclair_fm::FmProfile;
use std::path::PathBuf;

/// FNV-1a digest (the repo's standard trace-digest construction).
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical corpus: hand-written scenarios covering the grammar's
/// corners — lean and chaotic, budgeted and retrying, single- and
/// multi-worker, each model family. Stable by construction: these are
/// literals, not generated draws, so regenerating tooling can never
/// silently change which scenarios the corpus pins.
fn corpus() -> Vec<(&'static str, Scenario)> {
    let base = Scenario {
        id: 0,
        seed: 0,
        task_indices: vec![],
        profile: FmProfile::Oracle,
        chaos_rate: 0.0,
        chaos_seed: 0,
        token_budget: None,
        deadline_steps: None,
        max_attempts: 1,
        workers: 1,
        use_cache: true,
        use_shared: true,
    };
    vec![
        (
            "oracle_calm",
            Scenario {
                seed: 0x5EED_0001,
                task_indices: vec![0, 2, 4],
                ..base.clone()
            },
        ),
        (
            "gpt4v_chaos_parallel",
            Scenario {
                seed: 0x5EED_0002,
                task_indices: vec![1, 9, 12, 20],
                profile: FmProfile::Gpt4V,
                chaos_rate: 0.3,
                chaos_seed: 0xC4A0_5001,
                max_attempts: 2,
                workers: 4,
                ..base.clone()
            },
        ),
        (
            "cogagent_budgeted_retries",
            Scenario {
                seed: 0x5EED_0003,
                task_indices: vec![5, 17],
                profile: FmProfile::CogAgent18b,
                token_budget: Some(6_000),
                max_attempts: 3,
                workers: 2,
                ..base.clone()
            },
        ),
        (
            "oracle_deadline_chaos",
            Scenario {
                seed: 0x5EED_0004,
                task_indices: vec![7, 25],
                chaos_rate: 0.2,
                chaos_seed: 0xC4A0_5002,
                deadline_steps: Some(8),
                ..base.clone()
            },
        ),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.snap"))
}

/// Three lines per snapshot: the scenario, the full fleet outcome, and
/// the merged-trace digest — line-oriented so drift diffs readably.
fn render(scenario: &Scenario) -> String {
    let run = run_scenario(scenario).expect("canonical scenario executes");
    let eval = evaluate(&run);
    assert!(
        eval.passed(),
        "golden scenarios must be violation-free: {:?}",
        eval.violations
    );
    let trace = run.report.merged_trace_jsonl().expect("trace serializes");
    format!(
        "scenario={}\noutcome={}\ntrace_fnv1a={:016x}\n",
        serde_json::to_string(scenario).expect("scenario serializes"),
        run.report.outcome.to_json(),
        fnv1a(&trace),
    )
}

#[test]
fn golden_corpus_matches_committed_snapshots() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut drifted = Vec::new();
    for (name, scenario) in corpus() {
        let rendered = render(&scenario);
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {} — run UPDATE_GOLDEN=1 cargo test --test golden_corpus",
                path.display()
            )
        });
        if committed != rendered {
            drifted.push(name);
        }
    }
    assert!(
        drifted.is_empty(),
        "golden corpus drift in {drifted:?}: behavior changed; if intentional, re-baseline \
         with UPDATE_GOLDEN=1 cargo test --test golden_corpus"
    );
}

#[test]
fn golden_corpus_is_stable_across_repeated_runs() {
    // The snapshots are only meaningful if rendering is a pure function.
    let (_, scenario) = corpus().remove(1);
    assert_eq!(render(&scenario), render(&scenario));
}

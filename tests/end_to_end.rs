//! Cross-crate integration tests: the full ECLAIR pipeline over the
//! simulated enterprise, plus the §5 extensions (ensembles, HITL, skills).

use eclair::prelude::*;
use eclair_core::execute::executor::ExecConfig;
use eclair_core::hitl::{HumanDecision, SensitivePolicy};
use eclair_core::multiagent::first_success;
use eclair_core::skills::SkillLibrary;
use eclair_gui::{DriftOp, Theme};

#[test]
fn oracle_agent_automates_every_site() {
    // One representative task per site, full Demonstrate→Execute→Validate.
    for id in ["gitlab-07", "magento-05"] {
        let task = eclair::sites::all_tasks()
            .into_iter()
            .find(|t| t.id == id)
            .unwrap();
        let mut agent = Eclair::new(EclairConfig {
            profile: ModelProfile::oracle(),
            ..Default::default()
        });
        let report = agent.automate(&task);
        assert!(report.success, "{id}: {:#?}", report.log);
        assert!(report.self_reported_complete, "{id}");
    }
    // Case-study sites through their task constructors.
    for task in [
        eclair::sites::tasks::erp_invoice_task(1),
        eclair::sites::tasks::payer_eligibility_task(0),
    ] {
        let mut agent = Eclair::new(EclairConfig {
            profile: ModelProfile::oracle(),
            ..Default::default()
        });
        let report = agent.automate(&task);
        assert!(report.success, "{}: {:#?}", task.id, report.log);
    }
}

#[test]
fn gpt4_agent_survives_ui_relabeling_that_breaks_rpa() {
    use eclair_rpa::script::{compile, AuthoringConfig};
    use eclair_rpa::RpaBot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let task = eclair::sites::all_tasks()
        .into_iter()
        .find(|t| t.id == "magento-05")
        .unwrap();
    let theme = Theme::with_ops(vec![DriftOp::Relabel {
        from: "Ship".into(),
        to: "Create shipment".into(),
    }]);

    // RPA authored on the pristine UI with label anchors: breaks.
    let mut author = task.launch();
    let mut rng = StdRng::seed_from_u64(4);
    let script = compile(
        &task.id,
        &mut author,
        &task.gold_trace.actions,
        AuthoringConfig {
            point_anchor_fraction: 0.0,
            label_anchor_fraction: 1.0,
            authoring_error_rate: 0.0,
        },
        &mut rng,
    );
    let mut rpa_session = task.site.launch_with_theme(theme.clone());
    assert!(
        !RpaBot.run(&mut rpa_session, &script).completed(),
        "label-anchored RPA must break on relabel"
    );

    // ECLAIR with the same (now stale) SOP: at least sometimes re-grounds
    // semantically ("Ship" → the shipment button) and completes.
    let mut wins = 0;
    for seed in 0..8 {
        let mut model = FmModel::new(ModelProfile::gpt4v(), 60 + seed);
        let mut session = task.site.launch_with_theme(theme.clone());
        let cfg = ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
        let r = eclair_core::execute::executor::run_on_session(
            &mut model,
            &mut session,
            &task.intent,
            &cfg,
        );
        let _ = r;
        if task.success.evaluate(&session) {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "FM grounding should adapt to relabeling: {wins}/8"
    );
}

#[test]
fn ensembles_and_validated_acceptance() {
    let task = eclair::sites::all_tasks()
        .into_iter()
        .find(|t| t.id == "gitlab-14")
        .unwrap();
    let cfg = ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
    let ens = first_success(&ModelProfile::gpt4v(), &task, &cfg, 4, 77);
    assert!(ens.attempts >= 1 && ens.attempts <= 4);
    if ens.success {
        assert!(ens.winner.is_some());
    }
}

#[test]
fn hitl_policy_gates_destructive_steps() {
    let policy = SensitivePolicy::enterprise_default();
    let task = eclair::sites::all_tasks()
        .into_iter()
        .find(|t| t.id == "gitlab-13") // archive project
        .unwrap();
    let gated: Vec<&str> = task
        .gold_sop
        .steps
        .iter()
        .filter(|s| policy.triggers(&eclair_core::execute::parse::parse_step(&s.text)))
        .map(|s| s.text.as_str())
        .collect();
    assert!(
        !gated.is_empty(),
        "archiving steps must trigger the sensitive-action interrupt"
    );
    // The oracle "human" approves; automation proceeds.
    let mut approver = eclair_core::hitl::FixedOracle(HumanDecision::Approve);
    use eclair_core::hitl::HumanOracle;
    assert_eq!(approver.decide(gated[0]), HumanDecision::Approve);
}

#[test]
fn skill_library_accumulates_and_transfers() {
    let lib = SkillLibrary::shared();
    let task = eclair::sites::all_tasks()
        .into_iter()
        .find(|t| t.id == "magento-05")
        .unwrap();
    // Run once and record what grounded successfully (simulated here by
    // teaching the library the gold grounding for the order page).
    let session = task.launch();
    let _ = session;
    lib.learn(
        "/magento/sales/orders/1001",
        "the 'Ship' button",
        eclair_gui::Point::new(50, 230),
    );
    // Transfers to a different order id.
    assert!(lib
        .recall("/magento/sales/orders/1002", "the 'Ship' button")
        .is_some());
    assert_eq!(lib.len(), 1);
}

#[test]
fn eclair_run_is_reproducible_from_seed() {
    let task = eclair::sites::all_tasks().remove(0);
    let run = |seed| {
        let mut agent = Eclair::new(EclairConfig {
            seed,
            ..Default::default()
        });
        let r = agent.automate(&task);
        (r.success, r.actions_attempted, r.sop_text)
    };
    assert_eq!(run(123), run(123), "same seed, same run");
}

#[test]
fn thirty_task_suite_is_solvable_and_distinct() {
    let tasks = eclair::sites::all_tasks();
    assert_eq!(tasks.len(), 30);
    let mut intents: Vec<&str> = tasks.iter().map(|t| t.intent.as_str()).collect();
    intents.sort();
    intents.dedup();
    assert_eq!(intents.len(), 30, "intents are distinct");
    for t in &tasks {
        t.verify_gold().unwrap();
    }
}

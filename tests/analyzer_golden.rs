//! Golden snapshots for the `eclair-analyze` renderers: the flamegraph,
//! aggregate, and diff reports over a canonical crucible scenario are
//! committed under `tests/golden/`, so any drift in the virtual clock,
//! the span profiler, or the analyzer's output grammar shows up as a
//! readable diff. The CLI prints these exact bytes (`profile`,
//! `aggregate`, `diff` all delegate to the same library renderers).
//!
//! To intentionally re-baseline after a deliberate behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test analyzer_golden
//! ```

use eclair_crucible::{run_scenario, Scenario};
use eclair_fm::FmProfile;
use eclair_obs::{
    aggregate, diff_traces, profile_spans, render_aggregate, render_diff, render_flamegraph,
};
use eclair_trace::TraceEvent;
use std::path::PathBuf;

/// The canonical trace: a calm multi-task oracle scenario (literal, not
/// generated — regenerating tooling can never change what it pins).
fn canonical() -> Scenario {
    Scenario {
        id: 0,
        seed: 0x0B5_0001,
        task_indices: vec![0, 3, 11],
        profile: FmProfile::Gpt4V,
        chaos_rate: 0.0,
        chaos_seed: 0,
        token_budget: None,
        deadline_steps: None,
        max_attempts: 2,
        workers: 1,
        use_cache: true,
        use_shared: true,
    }
}

/// A chaotic variant of the same runs, for a diff with real divergence.
fn perturbed() -> Scenario {
    Scenario {
        chaos_rate: 0.4,
        chaos_seed: 0xC4A0_5003,
        ..canonical()
    }
}

fn trace_of(s: &Scenario) -> Vec<TraceEvent> {
    run_scenario(s)
        .expect("canonical scenario executes")
        .report
        .merged_trace
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.snap"))
}

fn check(name: &str, rendered: &str) -> Result<(), String> {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return Ok(());
    }
    let committed = std::fs::read_to_string(&path).map_err(|_| {
        format!(
            "missing golden snapshot {} — run UPDATE_GOLDEN=1 cargo test --test analyzer_golden",
            path.display()
        )
    })?;
    if committed != rendered {
        return Err(format!("{name} drifted"));
    }
    Ok(())
}

#[test]
fn analyzer_renderers_match_committed_snapshots() {
    let base = trace_of(&canonical());
    let chaotic = trace_of(&perturbed());

    let mut drift = Vec::new();
    for (name, rendered) in [
        ("analyzer_profile", render_flamegraph(&profile_spans(&base))),
        (
            "analyzer_aggregate",
            render_aggregate(&aggregate(base.iter())),
        ),
        ("analyzer_diff", render_diff(&diff_traces(&base, &chaotic))),
        (
            "analyzer_diff_identical",
            render_diff(&diff_traces(&base, &base)),
        ),
    ] {
        if let Err(e) = check(name, &rendered) {
            drift.push(e);
        }
    }
    assert!(
        drift.is_empty(),
        "analyzer output drift: {drift:?}; if intentional, re-baseline with \
         UPDATE_GOLDEN=1 cargo test --test analyzer_golden"
    );
}

#[test]
fn analyzer_renderers_are_pure() {
    let base = trace_of(&canonical());
    assert_eq!(
        render_flamegraph(&profile_spans(&base)),
        render_flamegraph(&profile_spans(&trace_of(&canonical())))
    );
}

//! Offline stand-in for `criterion`.
//!
//! Runs each registered routine for a fixed warm-up plus a short timed
//! window and prints the mean wall time per iteration. There is no
//! statistical analysis, HTML report, or baseline comparison — just
//! enough to keep `cargo bench` harness-free binaries building and
//! producing a useful number.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Passed to each routine; call [`Bencher::iter`] with the code to time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, repeating it until the measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW {
            std::hint::black_box(f());
            self.iters += 1;
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark routine and print its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<40} (no iterations)");
        } else {
            let per_iter = b.elapsed / b.iters as u32;
            println!("{name:<40} {per_iter:>12.2?}/iter over {} iters", b.iters);
        }
        self
    }

    /// Compatibility no-op; configuration is fixed in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, portable, and statistically strong enough
//! for the simulation noise models in this repo. Streams differ from the
//! upstream crate's ChaCha-based `StdRng`, which only matters to tests
//! that hard-code values drawn from a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator's raw output
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types drawable uniformly from a bounded range. The single generic
/// [`SampleRange`] impl below goes through this trait so type inference
/// behaves like upstream rand's (`gen_range(0.0..0.15)` resolves via the
/// float-literal fallback instead of ambiguating between per-type impls).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p={p} not a probability"
        );
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stream differs from upstream
    /// rand's ChaCha-based `StdRng`; identical across platforms and runs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (the used subset of rand's `SliceRandom`).
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly pick a reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let i = r.gen_range(-5i32..7);
            assert!((-5..7).contains(&i));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(5);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut v = (0..20).collect::<Vec<_>>();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        v.sort_unstable();
        assert_eq!(v, orig);
    }
}

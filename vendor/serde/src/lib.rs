//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a minimal data model: [`Serialize`] lowers a type into an owned
//! JSON-like [`Value`] tree, [`Deserialize`] lifts it back. The
//! `serde_derive` proc-macro crate (re-exported here, as upstream does)
//! generates both impls for plain structs and enums, using upstream
//! serde's externally-tagged JSON conventions so exported artifacts look
//! like what real serde would have produced:
//!
//! * named-field struct → object
//! * newtype struct → inner value
//! * tuple struct → array
//! * unit enum variant → `"Variant"`
//! * newtype variant → `{"Variant": value}`
//! * tuple variant → `{"Variant": [..]}`
//! * struct variant → `{"Variant": {..}}`
//!
//! Map keys are emitted in sorted order so serialization is deterministic
//! regardless of hash-map iteration order.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree — the interchange format between
/// [`Serialize`], [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as ordered key/value pairs (insertion order preserved).
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; missing keys read as `Null` (so `Option`
    /// fields tolerate absence, as upstream serde does with defaults).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The elements of a `Seq`, or an error naming `what`.
    pub fn as_seq(&self, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::custom(format!(
                "{what}: expected array, got {other:?}"
            ))),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Lift a value of `Self` out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a value, with a descriptive error on mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------- primitives

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq("array")?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq("tuple")?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!("expected {want}-tuple, got {}", items.len())));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (the vendored
//! value-tree flavor) for plain structs and enums. The parser walks the raw
//! token stream directly — `syn`/`quote` are unavailable offline — and
//! supports exactly the shapes this workspace defines: named-field
//! structs, tuple structs, unit structs, and enums whose variants are
//! unit, tuple, or struct-like. Generics and `#[serde(...)]` attributes
//! are intentionally unsupported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum TypeDef {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_type_def(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            TypeDef::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected enum body for `{name}`: {other:?}"),
            };
            TypeDef::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advance past leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Consume a type (after `:`), stopping at a top-level `,` (consumed) or
/// the end of the stream. Tracks `<`/`>` depth since token trees do not
/// group angle brackets.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "expected `:` after field `{}`, found {other:?}",
                names.last().unwrap()
            ),
        }
        skip_type(&tokens, &mut i);
    }
    names
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut count = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        {body}\n    }}\n}}\n"
            )
        }
        TypeDef::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Map(vec![(String::from(\"{vn}\"), serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(String::from(\"{vn}\"), serde::Value::Seq(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(String::from(\"{vn}\"), serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}\n",
                arms.join("\n            ")
            )
        }
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    let body = match def {
        TypeDef::Struct { name, fields } => match fields {
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::from_value(v.field(\"{f}\")).map_err(|e| serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?"
                        )
                    })
                    .collect();
                format!("Ok({name} {{ {} }})", inits.join(", "))
            }
            Fields::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "{{ let items = v.as_seq(\"{name}\")?; if items.len() != {n} {{ return Err(serde::Error::custom(\"{name}: wrong tuple arity\")); }} Ok({name}({})) }}",
                    items.join(", ")
                )
            }
            Fields::Unit => format!(
                "match v {{ serde::Value::Null => Ok({name}), other => Err(serde::Error::custom(format!(\"{name}: expected null, got {{other:?}}\"))) }}"
            ),
        },
        TypeDef::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(val)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let items = val.as_seq(\"{name}::{vn}\")?; if items.len() != {n} {{ return Err(serde::Error::custom(\"{name}::{vn}: wrong arity\")); }} Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(val.field(\"{f}\")).map_err(|e| serde::Error::custom(format!(\"{name}::{vn}.{f}: {{e}}\")))?"
                                    )
                                })
                                .collect();
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {} }}),", inits.join(", ")))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n            serde::Value::Str(s) => match s.as_str() {{\n                {unit}\n                other => Err(serde::Error::custom(format!(\"unknown {name} variant: {{other}}\"))),\n            }},\n            serde::Value::Map(entries) if entries.len() == 1 => {{\n                let (k, val) = &entries[0];\n                match k.as_str() {{\n                    {payload}\n                    other => Err(serde::Error::custom(format!(\"unknown {name} variant: {{other}}\"))),\n                }}\n            }}\n            other => Err(serde::Error::custom(format!(\"cannot parse {name} from {{other:?}}\"))),\n        }}",
                unit = unit_arms.join("\n                "),
                payload = payload_arms.join("\n                    "),
            )
        }
    };
    let name = match def {
        TypeDef::Struct { name, .. } | TypeDef::Enum { name, .. } => name,
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}

//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators this workspace's property tests
//! use — ranges, tuples, `prop_map`, `collection::vec`, and a regex-subset
//! string generator — driven by a deterministic RNG. Each `proptest!` test
//! runs [`NUM_CASES`] generated cases; on failure the panic message from
//! `prop_assert!` carries the assertion text (there is no shrinking). The
//! case RNG is seeded per test from the test body's shape, so runs are
//! reproducible build-to-build.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};

    /// Number of generated cases per property test.
    pub const NUM_CASES: usize = 64;

    /// The per-test case generator.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Deterministic generator for a named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// A `&str` is a regex strategy, as in upstream proptest.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::RegexStrategy::compile(self)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Strategy for vectors: `vec(element, 1..12)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Error from [`string_regex`] on unsupported patterns.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// One atom of the compiled pattern plus its repetition bounds.
    #[derive(Debug, Clone)]
    struct Piece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A compiled regex-subset generator: sequences of literal characters
    /// and `[...]` classes (with ranges), each optionally quantified by
    /// `{n}`, `{m,n}`, `?`, `*`, or `+` (unbounded repeats cap at 8).
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    impl RegexStrategy {
        /// Compile a pattern, rejecting constructs outside the subset.
        pub fn compile(pattern: &str) -> Result<Self, Error> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut i = 0usize;
            let mut pieces = Vec::new();
            while i < chars.len() {
                let set = match chars[i] {
                    '[' => {
                        let close = chars[i + 1..]
                            .iter()
                            .position(|&c| c == ']')
                            .ok_or_else(|| Error("unclosed [".into()))?
                            + i
                            + 1;
                        let set = expand_class(&chars[i + 1..close])?;
                        i = close + 1;
                        set
                    }
                    '\\' => {
                        let c = *chars
                            .get(i + 1)
                            .ok_or_else(|| Error("dangling \\".into()))?;
                        i += 2;
                        match c {
                            'd' => ('0'..='9').collect(),
                            'w' => ('a'..='z')
                                .chain('A'..='Z')
                                .chain('0'..='9')
                                .chain(std::iter::once('_'))
                                .collect(),
                            's' => vec![' '],
                            c => vec![c],
                        }
                    }
                    '.' => {
                        i += 1;
                        ('a'..='z').chain('A'..='Z').chain('0'..='9').collect()
                    }
                    '(' | ')' | '|' => {
                        return Err(Error(format!("unsupported construct `{}`", chars[i])))
                    }
                    c => {
                        i += 1;
                        vec![c]
                    }
                };
                let (min, max) = parse_quantifier(&chars, &mut i)?;
                pieces.push(Piece {
                    chars: set,
                    min,
                    max,
                });
            }
            Ok(RegexStrategy { pieces })
        }
    }

    fn expand_class(body: &[char]) -> Result<Vec<char>, Error> {
        if body.first() == Some(&'^') {
            return Err(Error("negated classes unsupported".into()));
        }
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                if lo > hi {
                    return Err(Error(format!("bad range {lo}-{hi}")));
                }
                out.extend(lo..=hi);
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            return Err(Error("empty class".into()));
        }
        Ok(out)
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> Result<(usize, usize), Error> {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unclosed {".into()))?
                    + *i
                    + 1;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parts: Vec<&str> = body.split(',').collect();
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| Error(format!("bad quantifier `{body}`")))
                };
                match parts.as_slice() {
                    [n] => {
                        let n = parse(n)?;
                        Ok((n, n))
                    }
                    [m, n] => Ok((parse(m)?, parse(n)?)),
                    _ => Err(Error(format!("bad quantifier `{body}`"))),
                }
            }
            Some('?') => {
                *i += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *i += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *i += 1;
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let n = rng.0.gen_range(piece.min..=piece.max);
                for _ in 0..n {
                    out.push(piece.chars[rng.0.gen_range(0..piece.chars.len())]);
                }
            }
            out
        }
    }

    /// Compile `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        RegexStrategy::compile(pattern)
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::NUM_CASES;

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// runs the body over [`NUM_CASES`] generated cases with a per-test
/// deterministic RNG.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::strategy::TestRng::for_test(stringify!($name));
            for __case in 0..$crate::NUM_CASES {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
    )+};
}

/// Assert inside a property test (no shrinking; panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

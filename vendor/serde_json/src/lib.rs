//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree to JSON text and parses it back.
//!
//! Output conventions match upstream closely enough for interchange:
//! objects keep field order, floats print via Rust's shortest round-trip
//! (`{:?}`) form, non-finite floats serialize as `null`, and strings are
//! escaped per RFC 8259. Parsing accepts arbitrary JSON; integers land in
//! `I64`/`U64` and anything with a fraction or exponent in `F64`.

pub use serde::{Error, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value as compact JSON appended to an existing buffer: the
/// allocation-reusing counterpart of [`to_string`], for callers emitting
/// many values into one output (JSONL exporters). Produces exactly the
/// bytes [`to_string`] would.
pub fn to_string_into<T: serde::Serialize + ?Sized>(
    value: &T,
    out: &mut String,
) -> Result<(), Error> {
    write_value(&value.to_value(), out);
    Ok(())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    parse_value_complete(s)
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Value::Null),
            Some(b't') => self.eat_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|c| *c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the `XXXX` of a `\u` escape; `pos` is on the `u` going in and
    /// on the final hex digit coming out (the caller advances past it).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let v: Vec<i64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s: String = from_str("\"h\\u00e9llo\"").unwrap();
        assert_eq!(s, "héllo");
    }

    #[test]
    fn to_string_into_appends_identical_bytes() {
        let mut buf = String::from("prefix ");
        to_string_into(&vec![1i64, 2, 3], &mut buf).unwrap();
        assert_eq!(
            buf,
            format!("prefix {}", to_string(&vec![1i64, 2, 3]).unwrap())
        );
    }

    #[test]
    fn nested_value_round_trips() {
        let text = r#"{"a":[1,2.5,null],"b":{"c":"x","d":false},"big":9223372036854775808}"#;
        let v = value_from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("1 2").is_err());
        assert!(value_from_str("nul").is_err());
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for x in [0.1f64, 1.0, -2.75, 1e-9, 123456.789] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }
}
